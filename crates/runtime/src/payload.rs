//! The data plane: plaintext chunks, sealed (encrypted) chunks, and parcels.
//!
//! Algorithms are written once against these types and run in two modes:
//!
//! - **Real** — [`Data::Real`] carries actual bytes in a refcounted segment
//!   [`Rope`]; encryption is real AES-128-GCM. Used by correctness/security
//!   tests, examples, and the wall-clock benchmarks.
//! - **Phantom** — [`Data::Phantom`] carries only a length. Used by the
//!   cluster-scale virtual-time simulations (e.g. p = 1024 with 512 KB
//!   blocks, where real buffers would need hundreds of gigabytes).
//!
//! Both modes track *origins*: which ranks' blocks a chunk contains, in
//! order. Even a phantom simulation therefore proves the all-gather
//! postcondition (every rank ends with every origin exactly once).
//!
//! Real payloads are rope-backed end to end: clone/slice/concat are
//! refcount and pointer operations, so forwarding a chunk, logging a frame
//! for retransmission, or fanning a block out to node peers never copies
//! payload bytes. Bytes move only at the seal gather, at a GCM open over a
//! shared or fragmented frame, and at explicit materialization points — all
//! counted by [`eag_rope::probe`].

use eag_netsim::Rank;
use eag_rope::Rope;

/// Payload bytes, real or phantom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Data {
    /// Actual bytes, as a refcounted segment rope. Equality is over the
    /// logical byte string, independent of segmentation.
    Real(Rope),
    /// Length-only placeholder for cost simulation.
    Phantom(usize),
}

impl Data {
    /// Length in bytes (plaintext length for chunks, wire length for seals).
    pub fn len(&self) -> usize {
        match self {
            Data::Real(b) => b.len(),
            Data::Phantom(n) => *n,
        }
    }

    /// True when the length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for [`Data::Real`].
    pub fn is_real(&self) -> bool {
        matches!(self, Data::Real(_))
    }

    /// Borrows the real payload rope; panics on phantom data.
    pub fn rope(&self) -> &Rope {
        match self {
            Data::Real(b) => b,
            Data::Phantom(_) => panic!("phantom data has no bytes"),
        }
    }

    /// Materializes the real bytes into a fresh contiguous `Vec` (a counted
    /// copy); panics on phantom data.
    pub fn to_vec(&self) -> Vec<u8> {
        self.rope().to_vec()
    }
}

/// A plaintext fragment: the blocks of `origins` (each `block_len` bytes),
/// concatenated in `origins` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Ranks whose blocks this chunk carries, in data order.
    pub origins: Vec<Rank>,
    /// Per-origin block length in bytes.
    pub block_len: usize,
    /// The concatenated block bytes (real or phantom).
    pub data: Data,
}

impl Chunk {
    /// A chunk holding a single origin's block.
    pub fn single(origin: Rank, data: Data) -> Self {
        let block_len = data.len();
        Chunk {
            origins: vec![origin],
            block_len,
            data,
        }
    }

    /// Total plaintext length.
    pub fn len(&self) -> usize {
        self.origins.len() * self.block_len
    }

    /// True when the chunk carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenates several chunks into one (origins order preserved).
    /// All inputs must agree on `block_len` and data mode.
    ///
    /// Chunk clones are refcount bumps, so the borrowing variant simply
    /// delegates to the owned rope-append implementation — no payload byte
    /// is copied either way.
    pub fn concat(chunks: &[Chunk]) -> Chunk {
        assert!(!chunks.is_empty(), "cannot concat zero chunks");
        Chunk::concat_owned(chunks.to_vec())
    }

    /// Concatenates owned chunks into one by appending their ropes —
    /// O(total segments) pointer operations, no payload byte is copied.
    pub fn concat_owned(chunks: Vec<Chunk>) -> Chunk {
        assert!(!chunks.is_empty(), "cannot concat zero chunks");
        let mut iter = chunks.into_iter();
        let mut acc = iter.next().expect("non-empty checked above");
        let phantom = !acc.data.is_real();
        let mut total = acc.data.len();
        for c in iter {
            assert_eq!(c.block_len, acc.block_len, "mixed block lengths");
            assert_eq!(!c.data.is_real(), phantom, "mixed data modes");
            total += c.data.len();
            acc.origins.extend_from_slice(&c.origins);
            if let (Data::Real(rope), Data::Real(more)) = (&mut acc.data, c.data) {
                rope.append(more);
            }
        }
        if phantom {
            acc.data = Data::Phantom(total);
        }
        acc
    }

    /// Splits the chunk into one single-origin chunk per origin. Real parts
    /// are rope slices sharing the parent's buffers — no byte is copied.
    pub fn split(&self) -> Vec<Chunk> {
        let m = self.block_len;
        self.origins
            .iter()
            .enumerate()
            .map(|(i, &origin)| Chunk {
                origins: vec![origin],
                block_len: m,
                data: match &self.data {
                    Data::Real(b) => Data::Real(b.slice(i * m..(i + 1) * m)),
                    Data::Phantom(_) => Data::Phantom(m),
                },
            })
            .collect()
    }

    /// Internal consistency: data length equals `origins.len() * block_len`.
    pub fn check(&self) {
        assert_eq!(
            self.data.len(),
            self.origins.len() * self.block_len,
            "chunk data length does not match origins"
        );
    }
}

/// An encrypted fragment: GCM-sealed bytes of a [`Chunk`], plus the metadata
/// needed to route and account for it. Wire layout (real mode):
/// `nonce(12) ‖ ciphertext(plain_len) ‖ tag(16)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// Ranks whose blocks the underlying plaintext carries, in order.
    pub origins: Vec<Rank>,
    /// Per-origin block length of the underlying plaintext.
    pub block_len: usize,
    /// Underlying plaintext length in bytes.
    pub plain_len: usize,
    /// The wire bytes (real) or wire length (phantom).
    pub data: Data,
}

impl Sealed {
    /// Wire length: plaintext + 28 bytes of nonce/tag framing.
    pub fn wire_len(&self) -> usize {
        self.plain_len + eag_crypto::WIRE_OVERHEAD
    }
}

/// One item inside a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Plaintext (allowed on intra-node links only, by convention).
    Plain(Chunk),
    /// Encrypted.
    Sealed(Sealed),
}

impl Item {
    /// Bytes this item occupies on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            Item::Plain(c) => c.len(),
            Item::Sealed(s) => s.wire_len(),
        }
    }

    /// Payload bytes: wire bytes without the GCM framing.
    pub fn payload_len(&self) -> usize {
        match self {
            Item::Plain(c) => c.len(),
            Item::Sealed(s) => s.plain_len,
        }
    }

    /// Origins covered by this item.
    pub fn origins(&self) -> &[Rank] {
        match self {
            Item::Plain(c) => &c.origins,
            Item::Sealed(s) => &s.origins,
        }
    }

    /// Unwraps a plaintext chunk; panics on sealed items.
    pub fn into_plain(self) -> Chunk {
        match self {
            Item::Plain(c) => c,
            Item::Sealed(_) => panic!("expected plaintext item, found sealed"),
        }
    }

    /// Unwraps a sealed chunk; panics on plaintext items.
    pub fn into_sealed(self) -> Sealed {
        match self {
            Item::Plain(_) => panic!("expected sealed item, found plaintext"),
            Item::Sealed(s) => s,
        }
    }
}

/// One point-to-point message: a batch of items sent together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parcel {
    /// The items, in sender-chosen order.
    pub items: Vec<Item>,
}

const MIX_M: u64 = 0x9E37_79B9_7F4A_7C15;
const MIX_LANE_SEEDS: [u64; 4] = [
    0xA076_1D64_78BD_642F,
    0xE703_7ED1_A0B4_28DB,
    0x8EBC_6AF0_9C88_C6E3,
    0x5899_65CC_7537_4CC3,
];

#[inline]
fn mix_lanes(h: u64) -> [u64; 4] {
    [
        h ^ MIX_LANE_SEEDS[0],
        h ^ MIX_LANE_SEEDS[1],
        h ^ MIX_LANE_SEEDS[2],
        h ^ MIX_LANE_SEEDS[3],
    ]
}

/// One 32-byte stride: eight bytes into each of the four lanes.
#[inline]
fn mix_stride(lanes: &mut [u64; 4], c: &[u8]) {
    for (i, lane) in lanes.iter_mut().enumerate() {
        let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().unwrap());
        *lane = (*lane ^ w).wrapping_mul(MIX_M);
    }
}

/// Folds the lanes back into `h` and absorbs the final sub-stride bytes
/// (`rest.len() < 32`).
#[inline]
fn mix_fold(h: u64, lanes: [u64; 4], rest: &[u8]) -> u64 {
    debug_assert!(rest.len() < 32);
    let mut h = lanes
        .into_iter()
        .fold(h, |acc, l| (acc ^ l.rotate_left(23)).wrapping_mul(MIX_M));
    let mut tail = rest.chunks_exact(8);
    for w in &mut tail {
        h ^= u64::from_le_bytes(w.try_into().unwrap());
        h = (h ^ (h >> 29)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    let last = tail.remainder();
    if !last.is_empty() {
        let mut buf = [0u8; 8];
        buf[..last.len()].copy_from_slice(last);
        // Fold the tail length in so "ab" and "ab\0" differ.
        h ^= u64::from_le_bytes(buf) ^ ((last.len() as u64) << 56);
        h = (h ^ (h >> 29)).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    h
}

/// Word-stride digest of `bytes` keyed by `h`. Four independent lanes over
/// 32-byte strides keep the hash throughput-bound instead of
/// chained-multiply latency-bound.
fn mix(h: u64, bytes: &[u8]) -> u64 {
    let mut lanes = mix_lanes(h);
    let mut chunks = bytes.chunks_exact(32);
    for c in &mut chunks {
        mix_stride(&mut lanes, c);
    }
    mix_fold(h, lanes, chunks.remainder())
}

/// [`mix`] over a rope's logical bytes without flattening it: a 32-byte
/// carry buffer stitches strides across segment boundaries, so the digest
/// equals `mix(h, flattened_bytes)` for every segmentation of the same byte
/// string. Contiguous ropes (the common case for wire frames) take the
/// slice fast path.
fn mix_rope(h: u64, rope: &Rope) -> u64 {
    if let Some(flat) = rope.as_contiguous() {
        return mix(h, flat);
    }
    let mut lanes = mix_lanes(h);
    let mut carry = [0u8; 32];
    let mut fill = 0usize;
    for mut seg in rope.segments() {
        if fill > 0 {
            let take = seg.len().min(32 - fill);
            carry[fill..fill + take].copy_from_slice(&seg[..take]);
            fill += take;
            seg = &seg[take..];
            if fill < 32 {
                continue;
            }
            mix_stride(&mut lanes, &carry);
        }
        let mut chunks = seg.chunks_exact(32);
        for c in &mut chunks {
            mix_stride(&mut lanes, c);
        }
        let rest = chunks.remainder();
        carry[..rest.len()].copy_from_slice(rest);
        fill = rest.len();
    }
    mix_fold(h, lanes, &carry[..fill])
}

impl Parcel {
    /// An empty parcel.
    pub fn new() -> Self {
        Parcel { items: Vec::new() }
    }

    /// A parcel with one item.
    pub fn one(item: Item) -> Self {
        Parcel { items: vec![item] }
    }

    /// Total wire bytes.
    pub fn wire_len(&self) -> usize {
        self.items.iter().map(Item::wire_len).sum()
    }

    /// Total payload bytes (framing excluded).
    pub fn payload_len(&self) -> usize {
        self.items.iter().map(Item::payload_len).sum()
    }

    /// True if any item is plaintext.
    pub fn has_plain(&self) -> bool {
        self.items.iter().any(|i| matches!(i, Item::Plain(_)))
    }

    /// Word-stride digest over the parcel's full wire representation — item
    /// kinds, routing metadata, and payload bytes (length for phantom
    /// data). This models the link-layer CRC of a real fabric: the sender
    /// stamps it before transmission, so random in-flight corruption is
    /// caught at the next hop without touching the cryptographic layer.
    /// It is **not** adversarially secure — that is GCM's job. Payload
    /// bytes are folded eight at a time (with a distinct-per-position tail)
    /// so that stamping and verifying cost ~1/8th of a byte-at-a-time FNV —
    /// this digest runs twice per frame on the chaos hot path. Rope payloads
    /// are digested segment by segment (`mix_rope`); the value depends
    /// only on the logical bytes, never on segmentation.
    pub fn checksum(&self) -> u64 {
        let mut h = mix(
            0xCBF2_9CE4_8422_2325,
            &(self.items.len() as u64).to_le_bytes(),
        );
        for item in &self.items {
            let (kind, origins, block_len, extra, data) = match item {
                Item::Plain(c) => (0u8, &c.origins, c.block_len, 0usize, &c.data),
                Item::Sealed(s) => (1u8, &s.origins, s.block_len, s.plain_len, &s.data),
            };
            h = mix(h, &[kind]);
            h = mix(h, &(origins.len() as u64).to_le_bytes());
            for &o in origins {
                h = mix(h, &(o as u64).to_le_bytes());
            }
            h = mix(h, &(block_len as u64).to_le_bytes());
            h = mix(h, &(extra as u64).to_le_bytes());
            h = match data {
                Data::Real(bytes) => mix_rope(mix(h, &[1]), bytes),
                Data::Phantom(n) => mix(mix(h, &[0]), &(*n as u64).to_le_bytes()),
            };
        }
        h
    }
}

/// Deterministic test pattern for rank `origin`'s block: high-entropy-looking
/// but reproducible, so receivers can verify content without communication.
pub fn pattern_block(seed: u64, origin: Rank, len: usize) -> Vec<u8> {
    // splitmix64 stream keyed by (seed, origin).
    splitmix_stream(seed ^ (origin as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15), len)
}

/// Deterministic test pattern for the *personalized* block rank `src` sends
/// to rank `dst` (all-to-all traffic): keyed by the ordered pair, so the
/// (0→1) block differs from (1→0) and from either rank's `pattern_block`.
pub fn pattern_block_pair(seed: u64, src: Rank, dst: Rank, len: usize) -> Vec<u8> {
    let key = seed
        ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix_stream(key, len)
}

fn splitmix_stream(key: u64, len: usize) -> Vec<u8> {
    let mut state = key;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let bytes = z.to_le_bytes();
        let take = bytes.len().min(len - out.len());
        out.extend_from_slice(&bytes[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(bytes: Vec<u8>) -> Data {
        Data::Real(bytes.into())
    }

    #[test]
    fn chunk_concat_and_split_roundtrip() {
        let a = Chunk::single(0, real(vec![1, 2, 3]));
        let b = Chunk::single(5, real(vec![4, 5, 6]));
        let c = Chunk::concat(&[a.clone(), b.clone()]);
        assert_eq!(c.origins, vec![0, 5]);
        assert_eq!(c.len(), 6);
        c.check();
        let parts = c.split();
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn concat_owned_matches_concat() {
        let parts = vec![
            Chunk::single(0, real(vec![1, 2, 3])),
            Chunk::single(5, real(vec![4, 5, 6])),
            Chunk::single(2, real(vec![7, 8, 9])),
        ];
        assert_eq!(Chunk::concat(&parts), Chunk::concat_owned(parts.clone()));

        let phantoms = vec![
            Chunk::single(1, Data::Phantom(100)),
            Chunk::single(2, Data::Phantom(100)),
        ];
        assert_eq!(
            Chunk::concat(&phantoms),
            Chunk::concat_owned(phantoms.clone())
        );
    }

    #[test]
    fn concat_and_split_copy_no_payload_bytes() {
        let parts = vec![
            Chunk::single(0, real(vec![1u8; 256])),
            Chunk::single(1, real(vec![2u8; 256])),
            Chunk::single(2, real(vec![3u8; 256])),
        ];
        eag_rope::probe::reset();
        let merged = Chunk::concat(&parts);
        let back = merged.split();
        assert_eq!(eag_rope::probe::snapshot().copied_bytes, 0);
        assert_eq!(back, parts);
        assert_eq!(merged.data.rope().segment_count(), 3);
    }

    #[test]
    fn phantom_concat_tracks_lengths_and_origins() {
        let a = Chunk::single(1, Data::Phantom(100));
        let b = Chunk::single(2, Data::Phantom(100));
        let c = Chunk::concat(&[a, b]);
        assert_eq!(c.data.len(), 200);
        assert_eq!(c.origins, vec![1, 2]);
        let parts = c.split();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].data, Data::Phantom(100));
    }

    #[test]
    #[should_panic(expected = "mixed data modes")]
    fn concat_rejects_mixed_modes() {
        let a = Chunk::single(0, real(vec![0; 4]));
        let b = Chunk::single(1, Data::Phantom(4));
        let _ = Chunk::concat(&[a, b]);
    }

    #[test]
    fn sealed_wire_len_adds_28() {
        let s = Sealed {
            origins: vec![3],
            block_len: 100,
            plain_len: 100,
            data: Data::Phantom(128),
        };
        assert_eq!(s.wire_len(), 128);
    }

    #[test]
    fn parcel_wire_len_sums_items() {
        let p = Parcel {
            items: vec![
                Item::Plain(Chunk::single(0, Data::Phantom(10))),
                Item::Sealed(Sealed {
                    origins: vec![1],
                    block_len: 10,
                    plain_len: 10,
                    data: Data::Phantom(38),
                }),
            ],
        };
        assert_eq!(p.wire_len(), 48);
        assert!(p.has_plain());
    }

    #[test]
    fn checksum_detects_any_single_byte_flip() {
        let mut p = Parcel {
            items: vec![
                Item::Plain(Chunk::single(0, real(vec![1, 2, 3, 4]))),
                Item::Sealed(Sealed {
                    origins: vec![1, 2],
                    block_len: 3,
                    plain_len: 6,
                    data: real(vec![9; 34]),
                }),
            ],
        };
        let base = p.checksum();
        assert_eq!(base, p.checksum(), "checksum must be deterministic");
        fn flip(p: &mut Parcel, item_idx: usize, i: usize) {
            let data = match &mut p.items[item_idx] {
                Item::Plain(c) => &mut c.data,
                Item::Sealed(s) => &mut s.data,
            };
            if let Data::Real(bytes) = data {
                bytes.xor_byte(i, 0x80);
            }
        }
        for item_idx in 0..p.items.len() {
            let len = match &p.items[item_idx] {
                Item::Plain(c) => c.data.len(),
                Item::Sealed(s) => s.data.len(),
            };
            for i in 0..len {
                flip(&mut p, item_idx, i);
                assert_ne!(p.checksum(), base, "flip undetected at {item_idx}/{i}");
                flip(&mut p, item_idx, i);
            }
        }
        assert_eq!(p.checksum(), base);
    }

    #[test]
    fn checksum_is_segmentation_independent() {
        // The wire digest must not change when the same logical payload is
        // carried by differently fragmented ropes (forwarded vs rebuilt
        // frames), across every stride/tail boundary of the mixer.
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 63, 64, 65, 200] {
            let bytes = pattern_block(3, 1, len);
            let flat = Parcel::one(Item::Plain(Chunk::single(0, real(bytes.clone()))));
            let base = flat.checksum();
            for split in [0, 1, len / 3, len / 2, len.saturating_sub(1), len] {
                if split > len {
                    continue;
                }
                let mut rope = Rope::from(bytes[..split].to_vec());
                rope.append(Rope::from(bytes[split..].to_vec()));
                let mut three = Rope::from(bytes[..split].to_vec());
                let mid = split + (len - split) / 2;
                three.append(Rope::from(bytes[split..mid].to_vec()));
                three.append(Rope::from(bytes[mid..].to_vec()));
                for r in [rope, three] {
                    let seg = Parcel::one(Item::Plain(Chunk {
                        origins: vec![0],
                        block_len: len,
                        data: Data::Real(r),
                    }));
                    assert_eq!(seg.checksum(), base, "len {len} split {split}");
                }
            }
        }
    }

    #[test]
    fn checksum_covers_metadata_and_phantom_lengths() {
        let a = Parcel::one(Item::Plain(Chunk::single(0, Data::Phantom(10))));
        let b = Parcel::one(Item::Plain(Chunk::single(0, Data::Phantom(11))));
        let c = Parcel::one(Item::Plain(Chunk::single(1, Data::Phantom(10))));
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), c.checksum());
        assert_ne!(Parcel::new().checksum(), a.checksum());
    }

    #[test]
    fn pattern_block_is_deterministic_and_distinct() {
        let a = pattern_block(7, 0, 64);
        let b = pattern_block(7, 0, 64);
        let c = pattern_block(7, 1, 64);
        let d = pattern_block(8, 0, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(pattern_block(7, 0, 5).len(), 5);
    }
}
