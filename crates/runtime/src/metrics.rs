//! Per-process metrics matching the paper's six performance measures.
//!
//! Section IV-A defines, per critical-path process:
//! `rc` communication rounds, `sc` bytes sent/received, `re` encryption
//! rounds, `se` bytes encrypted, `rd` decryption rounds, `sd` bytes
//! decrypted. The runtime counts all six (plus a few extras) so tests can
//! check measured values against the paper's Table II formulas and Table I
//! lower bounds.

/// Counters for one process, one collective invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Communication rounds (one per blocking receive).
    pub comm_rounds: u64,
    /// Bytes sent (wire bytes, all links).
    pub bytes_sent: u64,
    /// Bytes received (wire bytes, all links).
    pub bytes_recv: u64,
    /// Payload bytes sent: wire bytes minus the 28-byte GCM framing of each
    /// sealed item (the paper's analyses "ignore this constant overhead").
    pub payload_sent: u64,
    /// Payload bytes received (framing-free).
    pub payload_recv: u64,
    /// Bytes sent over inter-node links only.
    pub inter_bytes_sent: u64,
    /// Encryption operations.
    pub enc_rounds: u64,
    /// Plaintext bytes encrypted.
    pub enc_bytes: u64,
    /// Decryption operations.
    pub dec_rounds: u64,
    /// Plaintext bytes recovered by decryption.
    pub dec_bytes: u64,
    /// Shared-memory/user-buffer copies performed.
    pub copies: u64,
    /// Bytes moved by those copies.
    pub copy_bytes: u64,
}

impl Metrics {
    /// `sc` in the paper's terms: bytes through this process's critical path
    /// (the larger of sent and received), wire bytes.
    pub fn sc(&self) -> u64 {
        self.bytes_sent.max(self.bytes_recv)
    }

    /// `sc` with the GCM framing excluded — directly comparable to the
    /// paper's Table II formulas, which treat ciphertext and plaintext as
    /// the same length.
    pub fn sc_payload(&self) -> u64 {
        self.payload_sent.max(self.payload_recv)
    }

    /// Component-wise maximum: the per-metric critical path over processes.
    pub fn component_max(all: &[Metrics]) -> Metrics {
        let mut out = Metrics::default();
        for m in all {
            out.comm_rounds = out.comm_rounds.max(m.comm_rounds);
            out.bytes_sent = out.bytes_sent.max(m.bytes_sent);
            out.bytes_recv = out.bytes_recv.max(m.bytes_recv);
            out.payload_sent = out.payload_sent.max(m.payload_sent);
            out.payload_recv = out.payload_recv.max(m.payload_recv);
            out.inter_bytes_sent = out.inter_bytes_sent.max(m.inter_bytes_sent);
            out.enc_rounds = out.enc_rounds.max(m.enc_rounds);
            out.enc_bytes = out.enc_bytes.max(m.enc_bytes);
            out.dec_rounds = out.dec_rounds.max(m.dec_rounds);
            out.dec_bytes = out.dec_bytes.max(m.dec_bytes);
            out.copies = out.copies.max(m.copies);
            out.copy_bytes = out.copy_bytes.max(m.copy_bytes);
        }
        out
    }

    /// Sum over processes (for aggregate traffic checks).
    pub fn component_sum(all: &[Metrics]) -> Metrics {
        let mut out = Metrics::default();
        for m in all {
            out.comm_rounds += m.comm_rounds;
            out.bytes_sent += m.bytes_sent;
            out.bytes_recv += m.bytes_recv;
            out.payload_sent += m.payload_sent;
            out.payload_recv += m.payload_recv;
            out.inter_bytes_sent += m.inter_bytes_sent;
            out.enc_rounds += m.enc_rounds;
            out.enc_bytes += m.enc_bytes;
            out.dec_rounds += m.dec_rounds;
            out.dec_bytes += m.dec_bytes;
            out.copies += m.copies;
            out.copy_bytes += m.copy_bytes;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_is_max_of_sent_and_received() {
        let m = Metrics {
            bytes_sent: 10,
            bytes_recv: 25,
            ..Default::default()
        };
        assert_eq!(m.sc(), 25);
    }

    #[test]
    fn component_max_and_sum() {
        let a = Metrics {
            comm_rounds: 3,
            enc_bytes: 100,
            ..Default::default()
        };
        let b = Metrics {
            comm_rounds: 5,
            enc_bytes: 10,
            ..Default::default()
        };
        let max = Metrics::component_max(&[a, b]);
        assert_eq!(max.comm_rounds, 5);
        assert_eq!(max.enc_bytes, 100);
        let sum = Metrics::component_sum(&[a, b]);
        assert_eq!(sum.comm_rounds, 8);
        assert_eq!(sum.enc_bytes, 110);
    }
}
