//! Per-process metrics matching the paper's six performance measures.
//!
//! Section IV-A defines, per critical-path process:
//! `rc` communication rounds, `sc` bytes sent/received, `re` encryption
//! rounds, `se` bytes encrypted, `rd` decryption rounds, `sd` bytes
//! decrypted. The runtime counts all six (plus a few extras) so tests can
//! check measured values against the paper's Table II formulas and Table I
//! lower bounds.

/// Counters for one process, one collective invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Communication rounds (one per blocking receive).
    pub comm_rounds: u64,
    /// Bytes sent (wire bytes, all links).
    pub bytes_sent: u64,
    /// Bytes received (wire bytes, all links).
    pub bytes_recv: u64,
    /// Payload bytes sent: wire bytes minus the 28-byte GCM framing of each
    /// sealed item (the paper's analyses "ignore this constant overhead").
    pub payload_sent: u64,
    /// Payload bytes received (framing-free).
    pub payload_recv: u64,
    /// Bytes sent over inter-node links only.
    pub inter_bytes_sent: u64,
    /// Encryption operations.
    pub enc_rounds: u64,
    /// Plaintext bytes encrypted.
    pub enc_bytes: u64,
    /// Decryption operations.
    pub dec_rounds: u64,
    /// Plaintext bytes recovered by decryption.
    pub dec_bytes: u64,
    /// Shared-memory/user-buffer copies performed.
    pub copies: u64,
    /// Bytes moved by those copies.
    pub copy_bytes: u64,
    /// Payload bytes physically memcpy'd by the data plane on this rank's
    /// thread (rope materializations, staging copies, copy-on-write) — the
    /// zero-copy probe. Unlike `copy_bytes`, which models the collective's
    /// shared-memory traffic, this counts what the implementation actually
    /// moved.
    pub memcpy_bytes: u64,
    /// Fresh payload byte buffers allocated by the data plane on this
    /// rank's thread.
    pub buf_allocs: u64,
    /// Faults this rank injected into its outgoing frames (chaos runs).
    pub faults_injected: u64,
    /// Corrupted or missing frames this rank detected on arrival (transport
    /// checksum, per-hop GCM verification, or a sequence gap).
    pub faults_detected: u64,
    /// NACKs this rank sent asking a peer to retransmit.
    pub nacks_sent: u64,
    /// Frames this rank retransmitted in response to NACKs.
    pub retransmits: u64,
    /// Wire bytes of those retransmissions (excluded from `bytes_sent` so
    /// the paper's Table II traffic columns stay fault-independent).
    pub retransmit_bytes: u64,
    /// Duplicate frames discarded by sequence-number deduplication.
    pub dup_frames_dropped: u64,
    /// Peer crashes this rank's failure detector observed (crash notice,
    /// heartbeat staleness, or a same-node shared-segment abort).
    pub crashes_detected: u64,
    /// Degraded recoveries this rank completed (shrunk-group re-runs).
    pub recoveries: u64,
    /// The [`CipherSuite::id`](eag_crypto::CipherSuite::id) of the suite
    /// this rank sealed under (0 = unset, e.g. a default-constructed
    /// `Metrics`). A label, not a counter: aggregations take the max so a
    /// uniform world reports its suite and a default-padded slot never
    /// masks it.
    pub cipher_suite: u64,
    /// Numeric id of the collective operation this rank last ran (0 =
    /// unset; ids are assigned by the collective layer in `eag-core`).
    /// Like `cipher_suite`, a label rather than a counter: aggregations
    /// take the max so default-padded slots never mask it.
    pub operation: u64,
}

impl Metrics {
    /// `sc` in the paper's terms: bytes through this process's critical path
    /// (the larger of sent and received), wire bytes.
    pub fn sc(&self) -> u64 {
        self.bytes_sent.max(self.bytes_recv)
    }

    /// `sc` with the GCM framing excluded — directly comparable to the
    /// paper's Table II formulas, which treat ciphertext and plaintext as
    /// the same length.
    pub fn sc_payload(&self) -> u64 {
        self.payload_sent.max(self.payload_recv)
    }

    /// Total recovery actions: NACKs issued plus frames retransmitted.
    /// Non-zero exactly when the run exercised the retry protocol.
    pub fn retries(&self) -> u64 {
        self.nacks_sent + self.retransmits
    }

    /// Component-wise maximum: the per-metric critical path over processes.
    pub fn component_max(all: &[Metrics]) -> Metrics {
        let mut out = Metrics::default();
        for m in all {
            out.comm_rounds = out.comm_rounds.max(m.comm_rounds);
            out.bytes_sent = out.bytes_sent.max(m.bytes_sent);
            out.bytes_recv = out.bytes_recv.max(m.bytes_recv);
            out.payload_sent = out.payload_sent.max(m.payload_sent);
            out.payload_recv = out.payload_recv.max(m.payload_recv);
            out.inter_bytes_sent = out.inter_bytes_sent.max(m.inter_bytes_sent);
            out.enc_rounds = out.enc_rounds.max(m.enc_rounds);
            out.enc_bytes = out.enc_bytes.max(m.enc_bytes);
            out.dec_rounds = out.dec_rounds.max(m.dec_rounds);
            out.dec_bytes = out.dec_bytes.max(m.dec_bytes);
            out.copies = out.copies.max(m.copies);
            out.copy_bytes = out.copy_bytes.max(m.copy_bytes);
            out.memcpy_bytes = out.memcpy_bytes.max(m.memcpy_bytes);
            out.buf_allocs = out.buf_allocs.max(m.buf_allocs);
            out.faults_injected = out.faults_injected.max(m.faults_injected);
            out.faults_detected = out.faults_detected.max(m.faults_detected);
            out.nacks_sent = out.nacks_sent.max(m.nacks_sent);
            out.retransmits = out.retransmits.max(m.retransmits);
            out.retransmit_bytes = out.retransmit_bytes.max(m.retransmit_bytes);
            out.dup_frames_dropped = out.dup_frames_dropped.max(m.dup_frames_dropped);
            out.crashes_detected = out.crashes_detected.max(m.crashes_detected);
            out.recoveries = out.recoveries.max(m.recoveries);
            out.cipher_suite = out.cipher_suite.max(m.cipher_suite);
            out.operation = out.operation.max(m.operation);
        }
        out
    }

    /// Sum over processes (for aggregate traffic checks).
    pub fn component_sum(all: &[Metrics]) -> Metrics {
        let mut out = Metrics::default();
        for m in all {
            out.comm_rounds += m.comm_rounds;
            out.bytes_sent += m.bytes_sent;
            out.bytes_recv += m.bytes_recv;
            out.payload_sent += m.payload_sent;
            out.payload_recv += m.payload_recv;
            out.inter_bytes_sent += m.inter_bytes_sent;
            out.enc_rounds += m.enc_rounds;
            out.enc_bytes += m.enc_bytes;
            out.dec_rounds += m.dec_rounds;
            out.dec_bytes += m.dec_bytes;
            out.copies += m.copies;
            out.copy_bytes += m.copy_bytes;
            out.memcpy_bytes += m.memcpy_bytes;
            out.buf_allocs += m.buf_allocs;
            out.faults_injected += m.faults_injected;
            out.faults_detected += m.faults_detected;
            out.nacks_sent += m.nacks_sent;
            out.retransmits += m.retransmits;
            out.retransmit_bytes += m.retransmit_bytes;
            out.dup_frames_dropped += m.dup_frames_dropped;
            out.crashes_detected += m.crashes_detected;
            out.recoveries += m.recoveries;
            // Labels, not counters: summing ids is meaningless.
            out.cipher_suite = out.cipher_suite.max(m.cipher_suite);
            out.operation = out.operation.max(m.operation);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_is_max_of_sent_and_received() {
        let m = Metrics {
            bytes_sent: 10,
            bytes_recv: 25,
            ..Default::default()
        };
        assert_eq!(m.sc(), 25);
    }

    #[test]
    fn component_max_and_sum() {
        let a = Metrics {
            comm_rounds: 3,
            enc_bytes: 100,
            ..Default::default()
        };
        let b = Metrics {
            comm_rounds: 5,
            enc_bytes: 10,
            ..Default::default()
        };
        let max = Metrics::component_max(&[a, b]);
        assert_eq!(max.comm_rounds, 5);
        assert_eq!(max.enc_bytes, 100);
        let sum = Metrics::component_sum(&[a, b]);
        assert_eq!(sum.comm_rounds, 8);
        assert_eq!(sum.enc_bytes, 110);
    }

    #[test]
    fn crash_counters_aggregate() {
        let a = Metrics {
            crashes_detected: 1,
            recoveries: 1,
            ..Default::default()
        };
        let b = Metrics {
            crashes_detected: 2,
            ..Default::default()
        };
        let max = Metrics::component_max(&[a, b]);
        assert_eq!(max.crashes_detected, 2);
        assert_eq!(max.recoveries, 1);
        let sum = Metrics::component_sum(&[a, b]);
        assert_eq!(sum.crashes_detected, 3);
        assert_eq!(sum.recoveries, 1);
    }

    #[test]
    fn retries_sums_nacks_and_retransmits() {
        let m = Metrics {
            nacks_sent: 3,
            retransmits: 2,
            ..Default::default()
        };
        assert_eq!(m.retries(), 5);
        assert_eq!(Metrics::default().retries(), 0);
        let agg = Metrics::component_sum(&[m, m]);
        assert_eq!(agg.retries(), 10);
        assert_eq!(
            Metrics::component_max(&[m, Metrics::default()]).nacks_sent,
            3
        );
    }
}
