//! Thread-local allocation/copy accounting for the data plane.
//!
//! The runtime is thread-per-rank, so a thread-local counter pair gives an
//! exact, deterministic per-rank tally with no atomics on the hot path. The
//! rope counts every byte and buffer it materializes ([`crate::Rope::to_vec`],
//! [`crate::Rope::copy_into`], copy-on-write, shared `into_vec`); freezing an
//! existing buffer is free. Layers above count their own residual copies and
//! allocations through [`count_copied`]/[`count_buffer`] so the bench probe
//! sees the whole data plane, not just the rope.

use std::cell::Cell;

thread_local! {
    static COPIED_BYTES: Cell<u64> = const { Cell::new(0) };
    static BUFFERS: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of this thread's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Payload bytes memcpy'd on this thread since the last [`reset`].
    pub copied_bytes: u64,
    /// Fresh byte buffers allocated on this thread since the last [`reset`].
    pub buffers: u64,
}

/// Adds `n` to this thread's copied-bytes tally.
#[inline]
pub fn count_copied(n: usize) {
    COPIED_BYTES.with(|c| c.set(c.get() + n as u64));
}

/// Counts one freshly allocated byte buffer on this thread.
#[inline]
pub fn count_buffer() {
    BUFFERS.with(|c| c.set(c.get() + 1));
}

/// Reads this thread's counters without resetting them.
pub fn snapshot() -> Snapshot {
    Snapshot {
        copied_bytes: COPIED_BYTES.with(Cell::get),
        buffers: BUFFERS.with(Cell::get),
    }
}

/// Zeroes this thread's counters.
pub fn reset() {
    COPIED_BYTES.with(|c| c.set(0));
    BUFFERS.with(|c| c.set(0));
}

/// Reads and zeroes this thread's counters in one step.
pub fn take() -> Snapshot {
    let snap = snapshot();
    reset();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        count_copied(10);
        count_copied(5);
        count_buffer();
        assert_eq!(
            snapshot(),
            Snapshot {
                copied_bytes: 15,
                buffers: 1
            }
        );
        assert_eq!(take().copied_bytes, 15);
        assert_eq!(snapshot(), Snapshot::default());
    }

    #[test]
    fn counters_are_per_thread() {
        reset();
        count_copied(7);
        let other = std::thread::spawn(|| {
            count_copied(100);
            snapshot().copied_bytes
        })
        .join()
        .unwrap();
        assert_eq!(other, 100);
        assert_eq!(snapshot().copied_bytes, 7);
    }
}
