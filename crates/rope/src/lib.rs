//! # eag-rope — refcounted, sliceable segment ropes
//!
//! The zero-copy byte carrier of the encrypted all-gather data plane. A
//! [`Rope`] is a small list of *segments*, each an `(Arc<Vec<u8>>, offset,
//! len)` view into a frozen, immutable buffer:
//!
//! - **clone** bumps refcounts — O(#segments), no byte is copied;
//! - **slice** narrows the views — O(#segments), no byte is copied;
//! - **append** moves segment descriptors — O(#segments), no byte is copied;
//! - **freeze** ([`Rope::from`]` (Vec<u8>)`) takes ownership of an existing
//!   buffer — no byte is copied.
//!
//! Bytes are only ever moved at the explicit *materialize* points
//! ([`Rope::to_vec`], [`Rope::into_vec`] on a shared or fragmented rope,
//! [`Rope::copy_into`], the copy-on-write [`Rope::xor_byte`]), and every
//! such move is counted by the thread-local [`probe`] so the runtime can
//! report bytes-memcpy'd per rank and the regression gate can keep the data
//! plane honest.
//!
//! Buffers are immutable once frozen, so sharing a rope across threads is
//! safe without locks: all mutation happens before freezing (building the
//! `Vec<u8>`) or through copy-on-write (which replaces the affected segment
//! with a fresh private buffer and never touches the shared one).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

pub mod probe;

/// One immutable view into a frozen buffer.
#[derive(Clone)]
struct Seg {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Seg {
    #[inline]
    fn bytes(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

/// A refcounted segment rope: a logical byte string backed by shared,
/// immutable buffer views. See the crate docs for the cost model.
#[derive(Clone, Default)]
pub struct Rope {
    segs: Vec<Seg>,
    len: usize,
}

impl Rope {
    /// An empty rope.
    pub fn new() -> Rope {
        Rope::default()
    }

    /// Logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the rope carries no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing segments (0 for an empty rope).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// True when the whole rope is one contiguous view (or empty).
    pub fn is_contiguous(&self) -> bool {
        self.segs.len() <= 1
    }

    /// Borrows the bytes when the rope is contiguous; `None` when the
    /// logical string spans more than one segment.
    pub fn as_contiguous(&self) -> Option<&[u8]> {
        match self.segs.as_slice() {
            [] => Some(&[]),
            [seg] => Some(seg.bytes()),
            _ => None,
        }
    }

    /// Iterates the backing segments in logical order.
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        self.segs.iter().map(Seg::bytes)
    }

    /// A sub-rope of the logical range — O(#segments), no byte is copied.
    pub fn slice(&self, range: Range<usize>) -> Rope {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds of rope of length {}",
            self.len
        );
        let mut want = range.end - range.start;
        let mut skip = range.start;
        let mut segs = Vec::new();
        for seg in &self.segs {
            if want == 0 {
                break;
            }
            if skip >= seg.len {
                skip -= seg.len;
                continue;
            }
            let take = (seg.len - skip).min(want);
            segs.push(Seg {
                buf: Arc::clone(&seg.buf),
                off: seg.off + skip,
                len: take,
            });
            want -= take;
            skip = 0;
        }
        Rope {
            segs,
            len: range.end - range.start,
        }
    }

    /// Appends `other`'s segments — O(#segments of `other`), no byte is
    /// copied. Adjacent views into the same buffer are coalesced so ropes
    /// re-assembled from consecutive slices stay contiguous.
    pub fn append(&mut self, other: Rope) {
        self.len += other.len;
        for seg in other.segs {
            if let Some(last) = self.segs.last_mut() {
                if Arc::ptr_eq(&last.buf, &seg.buf) && last.off + last.len == seg.off {
                    last.len += seg.len;
                    continue;
                }
            }
            self.segs.push(seg);
        }
    }

    /// Copies the logical bytes out into a fresh `Vec` (a counted
    /// materialization).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for seg in &self.segs {
            out.extend_from_slice(seg.bytes());
        }
        if self.len > 0 {
            probe::count_buffer();
            probe::count_copied(self.len);
        }
        out
    }

    /// Appends the logical bytes to `out` (a counted materialization).
    pub fn copy_into(&self, out: &mut Vec<u8>) {
        for seg in &self.segs {
            out.extend_from_slice(seg.bytes());
        }
        probe::count_copied(self.len);
    }

    /// Recovers a contiguous owned `Vec` of the logical bytes. When the
    /// rope is the sole owner of a single full-buffer segment this is the
    /// freeze operation run backwards — the buffer is handed back without
    /// copying; otherwise it falls back to a counted [`Rope::to_vec`].
    pub fn into_vec(self) -> Vec<u8> {
        if let [seg] = self.segs.as_slice() {
            if seg.off == 0 && seg.len == seg.buf.len() {
                let seg = self.segs.into_iter().next().expect("one segment");
                match Arc::try_unwrap(seg.buf) {
                    Ok(buf) => return buf,
                    Err(shared) => {
                        let out = shared[seg.off..seg.off + seg.len].to_vec();
                        if !out.is_empty() {
                            probe::count_buffer();
                            probe::count_copied(out.len());
                        }
                        return out;
                    }
                }
            }
        }
        self.to_vec()
    }

    /// XORs `mask` into the byte at `index`, copying only the segment that
    /// holds it when the buffer is shared (copy-on-write). Every other
    /// segment keeps sharing its buffer, so clones taken before the call
    /// still see the original bytes.
    pub fn xor_byte(&mut self, index: usize, mask: u8) {
        assert!(index < self.len, "index {index} out of bounds");
        let mut skip = index;
        for seg in &mut self.segs {
            if skip >= seg.len {
                skip -= seg.len;
                continue;
            }
            match Arc::get_mut(&mut seg.buf) {
                Some(buf) if seg.off == 0 && seg.len == buf.len() => {
                    buf[skip] ^= mask;
                }
                _ => {
                    let mut owned = seg.bytes().to_vec();
                    owned[skip] ^= mask;
                    probe::count_buffer();
                    probe::count_copied(owned.len());
                    *seg = Seg {
                        len: owned.len(),
                        buf: Arc::new(owned),
                        off: 0,
                    };
                }
            }
            return;
        }
    }

    /// True when `needle` occurs as a contiguous run of logical bytes —
    /// segment boundaries are transparent to the search.
    pub fn contains_subslice(&self, needle: &[u8]) -> bool {
        if needle.is_empty() || needle.len() > self.len {
            return false;
        }
        for start in 0..=(self.len - needle.len()) {
            if self.matches_at(start, needle) {
                return true;
            }
        }
        false
    }

    fn matches_at(&self, start: usize, needle: &[u8]) -> bool {
        let mut pos = start;
        let mut matched = 0;
        for seg in &self.segs {
            if pos >= seg.len {
                pos -= seg.len;
                continue;
            }
            let bytes = &seg.bytes()[pos..];
            let take = bytes.len().min(needle.len() - matched);
            if bytes[..take] != needle[matched..matched + take] {
                return false;
            }
            matched += take;
            if matched == needle.len() {
                return true;
            }
            pos = 0;
        }
        false
    }
}

impl From<Vec<u8>> for Rope {
    /// Freezes an owned buffer into a rope without copying. Freezing is
    /// free and uncounted: the buffer already exists (whoever allocated it
    /// accounts for it), and a unique rope thawed back with
    /// [`Rope::into_vec`] can be re-frozen at no cost.
    fn from(buf: Vec<u8>) -> Rope {
        if buf.is_empty() {
            return Rope::new();
        }
        let len = buf.len();
        Rope {
            segs: vec![Seg {
                buf: Arc::new(buf),
                off: 0,
                len,
            }],
            len,
        }
    }
}

impl From<&[u8]> for Rope {
    /// Copies borrowed bytes into a fresh single-segment rope (counted).
    fn from(bytes: &[u8]) -> Rope {
        if !bytes.is_empty() {
            probe::count_buffer();
            probe::count_copied(bytes.len());
        }
        Rope::from(bytes.to_vec())
    }
}

impl PartialEq for Rope {
    /// Logical-byte equality: two ropes are equal iff they spell the same
    /// byte string, regardless of how it is segmented.
    fn eq(&self, other: &Rope) -> bool {
        if self.len != other.len {
            return false;
        }
        let mut a = self.segments();
        let mut b = other.segments();
        let (mut ca, mut cb): (&[u8], &[u8]) = (&[], &[]);
        loop {
            if ca.is_empty() {
                ca = match a.next() {
                    Some(s) => s,
                    None => return cb.is_empty() && b.next().is_none(),
                };
                continue;
            }
            if cb.is_empty() {
                cb = match b.next() {
                    Some(s) => s,
                    None => return false,
                };
                continue;
            }
            let n = ca.len().min(cb.len());
            if ca[..n] != cb[..n] {
                return false;
            }
            ca = &ca[n..];
            cb = &cb[n..];
        }
    }
}

impl Eq for Rope {}

impl PartialEq<[u8]> for Rope {
    fn eq(&self, other: &[u8]) -> bool {
        if self.len != other.len() {
            return false;
        }
        let mut pos = 0;
        for seg in self.segments() {
            if seg != &other[pos..pos + seg.len()] {
                return false;
            }
            pos += seg.len();
        }
        true
    }
}

impl PartialEq<&[u8]> for Rope {
    fn eq(&self, other: &&[u8]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<u8>> for Rope {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self == **other
    }
}

impl PartialEq<Rope> for Vec<u8> {
    fn eq(&self, other: &Rope) -> bool {
        *other == **self
    }
}

impl std::fmt::Debug for Rope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rope(len={}, segs={}", self.len, self.segs.len())?;
        if self.len <= 32 {
            write!(f, ", bytes=[")?;
            let mut first = true;
            for seg in self.segments() {
                for b in seg {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                    first = false;
                }
            }
            write!(f, "]")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rope_of(parts: &[&[u8]]) -> Rope {
        let mut r = Rope::new();
        for p in parts {
            // Distinct buffers per part: forces real segment boundaries.
            r.append(Rope::from(p.to_vec()));
        }
        r
    }

    #[test]
    fn freeze_is_zero_copy_and_roundtrips() {
        probe::reset();
        let r = Rope::from(vec![1, 2, 3, 4]);
        assert_eq!(probe::snapshot().copied_bytes, 0);
        assert_eq!(r.len(), 4);
        assert!(r.is_contiguous());
        assert_eq!(r.as_contiguous().unwrap(), &[1, 2, 3, 4]);
        assert_eq!(r.into_vec(), vec![1, 2, 3, 4]);
        // Unique single full segment: into_vec copied nothing either.
        assert_eq!(probe::snapshot().copied_bytes, 0);
    }

    #[test]
    fn slice_and_append_are_pointer_ops() {
        probe::reset();
        let r = Rope::from((0u8..100).collect::<Vec<_>>());
        let a = r.slice(0..40);
        let b = r.slice(40..100);
        let mut glued = a.clone();
        glued.append(b.clone());
        assert_eq!(glued, r);
        // Adjacent views of the same buffer coalesce back to one segment.
        assert_eq!(glued.segment_count(), 1);
        assert_eq!(probe::snapshot().copied_bytes, 0);
        assert_eq!(a.len(), 40);
        assert_eq!(b.slice(10..20).to_vec(), (50u8..60).collect::<Vec<_>>());
    }

    #[test]
    fn equality_ignores_segmentation() {
        let flat = Rope::from(vec![1, 2, 3, 4, 5]);
        let split = rope_of(&[&[1, 2], &[3], &[4, 5]]);
        assert_eq!(flat, split);
        assert_eq!(split, vec![1, 2, 3, 4, 5]);
        assert_ne!(split, rope_of(&[&[1, 2], &[3], &[4, 6]]));
        assert_ne!(split, Rope::from(vec![1, 2, 3, 4]));
        assert_eq!(Rope::new(), Rope::from(Vec::new()));
    }

    #[test]
    fn shared_into_vec_copies_and_counts() {
        probe::reset();
        let r = Rope::from(vec![7u8; 10]);
        let keep = r.clone();
        let out = r.into_vec(); // shared: must copy
        assert_eq!(out, vec![7u8; 10]);
        assert_eq!(keep.len(), 10);
        assert_eq!(probe::snapshot().copied_bytes, 10);
    }

    #[test]
    fn xor_byte_is_copy_on_write() {
        let original = Rope::from(vec![0u8; 8]);
        let mut tampered = original.clone();
        tampered.xor_byte(4, 0x80);
        assert_eq!(original, vec![0u8; 8]);
        assert_eq!(tampered.to_vec(), vec![0, 0, 0, 0, 0x80, 0, 0, 0]);
        // Unique rope: mutation happens in place, no copy.
        probe::reset();
        let mut unique = Rope::from(vec![1u8; 8]);
        unique.xor_byte(0, 0x01);
        assert_eq!(probe::snapshot().copied_bytes, 0);
        assert_eq!(unique.to_vec()[0], 0);
    }

    #[test]
    fn xor_byte_only_copies_the_touched_segment() {
        let mut r = rope_of(&[&[1u8; 4], &[2u8; 4], &[3u8; 4]]);
        let pristine = r.clone();
        probe::reset();
        r.xor_byte(6, 0xFF);
        assert_eq!(probe::snapshot().copied_bytes, 4); // one 4-byte segment
        assert_eq!(pristine, rope_of(&[&[1u8; 4], &[2u8; 4], &[3u8; 4]]));
        assert_eq!(r.to_vec()[6], 2 ^ 0xFF);
    }

    #[test]
    fn contains_subslice_spans_segments() {
        let r = rope_of(&[b"hello ", b"wor", b"ld"]);
        assert!(r.contains_subslice(b"hello world"));
        assert!(r.contains_subslice(b"o wor"));
        assert!(r.contains_subslice(b"orld"));
        assert!(!r.contains_subslice(b"worlds"));
        assert!(!r.contains_subslice(b""));
        assert!(!Rope::new().contains_subslice(b"x"));
    }

    #[test]
    fn slice_across_boundaries() {
        let r = rope_of(&[&[0, 1, 2], &[3, 4], &[5, 6, 7, 8]]);
        assert_eq!(r.slice(2..6).to_vec(), vec![2, 3, 4, 5]);
        assert_eq!(r.slice(0..9), r);
        assert!(r.slice(4..4).is_empty());
        assert_eq!(r.slice(8..9).to_vec(), vec![8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rejects_overrun() {
        let _ = Rope::from(vec![1, 2, 3]).slice(1..4);
    }

    #[test]
    fn send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Rope>();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a rope from `bytes` split at the given cut fractions, so the
    /// logical string is fixed but the segmentation varies per case.
    fn segmented(bytes: &[u8], cuts: &[usize]) -> Rope {
        let mut r = Rope::new();
        let mut prev = 0;
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();
        for c in cuts {
            if c > prev {
                r.append(Rope::from(bytes[prev..c].to_vec()));
                prev = c;
            }
        }
        if prev < bytes.len() {
            r.append(Rope::from(bytes[prev..].to_vec()));
        }
        r
    }

    proptest! {
        #[test]
        fn roundtrip_any_segmentation(
            bytes in proptest::collection::vec(any::<u8>(), 1..200),
            cuts in proptest::collection::vec(any::<usize>(), 0..6),
        ) {
            let r = segmented(&bytes, &cuts);
            prop_assert_eq!(r.len(), bytes.len());
            prop_assert_eq!(r.to_vec(), bytes.clone());
            prop_assert_eq!(r.clone(), Rope::from(bytes.clone()));
            prop_assert_eq!(r.into_vec(), bytes);
        }

        #[test]
        fn slice_matches_vec_slice(
            bytes in proptest::collection::vec(any::<u8>(), 1..200),
            cuts in proptest::collection::vec(any::<usize>(), 0..6),
            a in any::<usize>(),
            b in any::<usize>(),
        ) {
            let r = segmented(&bytes, &cuts);
            let (mut a, mut b) = (a % (bytes.len() + 1), b % (bytes.len() + 1));
            if a > b { std::mem::swap(&mut a, &mut b); }
            prop_assert_eq!(r.slice(a..b).to_vec(), bytes[a..b].to_vec());
        }

        #[test]
        fn split_then_append_is_identity(
            bytes in proptest::collection::vec(any::<u8>(), 1..200),
            cuts in proptest::collection::vec(any::<usize>(), 0..6),
            at in any::<usize>(),
        ) {
            let r = segmented(&bytes, &cuts);
            let at = at % (bytes.len() + 1);
            let mut glued = r.slice(0..at);
            glued.append(r.slice(at..bytes.len()));
            prop_assert_eq!(glued, r);
        }

        #[test]
        fn contains_subslice_matches_windows(
            bytes in proptest::collection::vec(0u8..4, 4..60),
            cuts in proptest::collection::vec(any::<usize>(), 0..5),
            start in any::<usize>(),
            len in 1usize..6,
        ) {
            let r = segmented(&bytes, &cuts);
            let start = start % bytes.len();
            let end = (start + len).min(bytes.len());
            let needle = &bytes[start..end];
            prop_assert!(r.contains_subslice(needle));
            let expected = bytes.windows(5).any(|w| w == [3, 3, 3, 3, 3]);
            prop_assert_eq!(r.contains_subslice(&[3, 3, 3, 3, 3]), expected);
        }
    }
}
