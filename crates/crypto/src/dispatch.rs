//! Shared runtime-dispatch policy for every backend in this crate.
//!
//! Each primitive (AES, GHASH/POLYVAL, ChaCha20) performs its own CPU
//! feature detection, but they all honor one global override: the
//! `EAG_CRYPTO_FORCE_SOFT` environment variable. When it is set (non-empty
//! and not `"0"`), every `new()` constructor selects its portable software
//! implementation regardless of what the CPU reports, so the soft fallbacks
//! can be exercised on SIMD-capable CI hosts. The variable is read once per
//! process and cached.

use std::sync::OnceLock;

/// True when `EAG_CRYPTO_FORCE_SOFT` demands portable-only dispatch.
///
/// All feature-detecting constructors consult this before probing the CPU;
/// the explicit `new_soft` constructors ignore it (they are already soft).
pub fn force_soft() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("EAG_CRYPTO_FORCE_SOFT") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}
