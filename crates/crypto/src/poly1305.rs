//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Poly1305 evaluates the message as a polynomial over the prime field
//! GF(2^130 − 5) at a secret point `r`, then adds a one-time pad `s`. This
//! implementation uses the classic 26-bit-limb radix (five limbs per 130-bit
//! value) so every partial product fits a `u64` with room for carries — the
//! portable layout that needs no 128-bit multiplier and runs constant-time
//! on any target (no secret-dependent branches or table indices).
//!
//! The key (`r || s`, 32 bytes) must be used for **one** message only; the
//! AEAD construction ([`crate::chacha20poly1305`]) derives a fresh key per
//! nonce from the ChaCha20 block function.

/// Incremental Poly1305 state. Feed with [`Poly1305::update`], consume with
/// [`Poly1305::finalize`].
#[derive(Clone)]
pub struct Poly1305 {
    /// The evaluation point r, clamped, as 26-bit limbs.
    r: [u32; 5],
    /// The accumulator, 26-bit limbs.
    h: [u32; 5],
    /// The pad s, as four LE words.
    pad: [u32; 4],
    /// Bytes buffered toward the next 16-byte block.
    buffer: [u8; 16],
    leftover: usize,
}

#[inline]
fn le32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

impl Poly1305 {
    /// Creates an authenticator from the 32-byte one-time key `r || s`.
    /// Clamping of `r` (RFC 8439 §2.5) is applied here.
    pub fn new(key: &[u8; 32]) -> Self {
        // Load r in 26-bit limbs; the masks below bake in the clamp.
        let r = [
            le32(&key[0..4]) & 0x03ff_ffff,
            (le32(&key[3..7]) >> 2) & 0x03ff_ff03,
            (le32(&key[6..10]) >> 4) & 0x03ff_c0ff,
            (le32(&key[9..13]) >> 6) & 0x03f0_3fff,
            (le32(&key[12..16]) >> 8) & 0x000f_ffff,
        ];
        let pad = [
            le32(&key[16..20]),
            le32(&key[20..24]),
            le32(&key[24..28]),
            le32(&key[28..32]),
        ];
        Poly1305 {
            r,
            h: [0; 5],
            pad,
            buffer: [0; 16],
            leftover: 0,
        }
    }

    /// Absorbs full 16-byte blocks from `m`. `hibit` is the 2^128 term added
    /// to every block (1 << 24 in limb 4 for full blocks, 0 when the caller
    /// has already appended the 0x01 terminator to a short final block).
    fn blocks(&mut self, m: &[u8], hibit: u32) {
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h.map(u64::from);

        for block in m.chunks_exact(16) {
            // h += block (with the 2^128 bit).
            h0 += u64::from(le32(&block[0..4]) & 0x03ff_ffff);
            h1 += u64::from((le32(&block[3..7]) >> 2) & 0x03ff_ffff);
            h2 += u64::from((le32(&block[6..10]) >> 4) & 0x03ff_ffff);
            h3 += u64::from((le32(&block[9..13]) >> 6) & 0x03ff_ffff);
            h4 += u64::from((le32(&block[12..16]) >> 8) | hibit);

            // h *= r modulo 2^130 − 5: the x^130 overflow limbs wrap around
            // multiplied by 5 (hence the precomputed s_i = 5·r_i).
            let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
            let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
            let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
            let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
            let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

            // Partial carry propagation (full reduction deferred to finalize).
            let mut c;
            c = d0 >> 26;
            h0 = d0 & 0x03ff_ffff;
            let d1 = d1 + c;
            c = d1 >> 26;
            h1 = d1 & 0x03ff_ffff;
            let d2 = d2 + c;
            c = d2 >> 26;
            h2 = d2 & 0x03ff_ffff;
            let d3 = d3 + c;
            c = d3 >> 26;
            h3 = d3 & 0x03ff_ffff;
            let d4 = d4 + c;
            c = d4 >> 26;
            h4 = d4 & 0x03ff_ffff;
            h0 += c * 5;
            c = h0 >> 26;
            h0 &= 0x03ff_ffff;
            h1 += c;
        }

        self.h = [h0 as u32, h1 as u32, h2 as u32, h3 as u32, h4 as u32];
    }

    /// Absorbs message bytes (any length; buffered to 16-byte blocks).
    pub fn update(&mut self, mut data: &[u8]) {
        if self.leftover > 0 {
            let want = (16 - self.leftover).min(data.len());
            self.buffer[self.leftover..self.leftover + want].copy_from_slice(&data[..want]);
            self.leftover += want;
            data = &data[want..];
            if self.leftover < 16 {
                return;
            }
            let block = self.buffer;
            self.blocks(&block, 1 << 24);
            self.leftover = 0;
        }
        let full = data.len() - data.len() % 16;
        if full > 0 {
            // Split borrows: copy the slice reference before the &mut call.
            let (head, tail) = data.split_at(full);
            self.blocks(head, 1 << 24);
            data = tail;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.leftover = data.len();
        }
    }

    /// Completes the MAC: processes the padded final block, fully reduces
    /// the accumulator, and adds the pad `s` modulo 2^128.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.leftover > 0 {
            // Short final block: append 0x01 then zero-fill; the 2^128 bit
            // is therefore already in the data and hibit is 0.
            let mut block = [0u8; 16];
            block[..self.leftover].copy_from_slice(&self.buffer[..self.leftover]);
            block[self.leftover] = 1;
            self.blocks(&block, 0);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Full carry propagation.
        let mut c;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + 5 − 2^130; select it when it does not borrow
        // (i.e. when h ≥ 2^130 − 5), branch-free.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        let mask = (g4 >> 31).wrapping_sub(1); // all-ones iff no borrow
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        h3 = (h3 & !mask) | (g3 & mask);
        h4 = (h4 & !mask) | (g4 & 0x03ff_ffff & mask);

        // Repack 5×26-bit limbs into 4×32-bit words.
        let w0 = h0 | (h1 << 26);
        let w1 = (h1 >> 6) | (h2 << 20);
        let w2 = (h2 >> 12) | (h3 << 14);
        let w3 = (h3 >> 18) | (h4 << 8);

        // tag = (h + s) mod 2^128.
        let mut f = u64::from(w0) + u64::from(self.pad[0]);
        let o0 = f as u32;
        f = u64::from(w1) + u64::from(self.pad[1]) + (f >> 32);
        let o1 = f as u32;
        f = u64::from(w2) + u64::from(self.pad[2]) + (f >> 32);
        let o2 = f as u32;
        f = u64::from(w3) + u64::from(self.pad[3]) + (f >> 32);
        let o3 = f as u32;

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_le_bytes());
        out[4..8].copy_from_slice(&o1.to_le_bytes());
        out[8..12].copy_from_slice(&o2.to_le_bytes());
        out[12..16].copy_from_slice(&o3.to_le_bytes());
        out
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8; 32], data: &[u8]) -> [u8; 16] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn mac_known_answer() {
        let mut key = [0u8; 32];
        key.copy_from_slice(&hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        ));
        let msg = b"Cryptographic Forum Research Group";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(&tag[..], &hex("a8061dc1305136c6c22b8baf0c0127a9")[..]);
    }

    /// Split updates equal one-shot MACs at every split point.
    #[test]
    fn incremental_updates_compose() {
        let mut key = [0u8; 32];
        key.copy_from_slice(&hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        ));
        let msg: Vec<u8> = (0..100u32).map(|i| (i * 7 + 1) as u8).collect();
        let whole = Poly1305::mac(&key, &msg);
        for split in 0..msg.len() {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), whole, "split = {split}");
        }
    }

    /// Edge cases: empty message, and messages around the 2^130−5 wrap.
    #[test]
    fn reduction_edge_cases() {
        // r = 2^129-ish values force the deferred reduction paths. With a
        // clamped r of all-ones and an all-0xff message, the accumulator
        // exercises the final conditional subtraction.
        let mut key = [0xffu8; 32];
        // Ensure clamp bits take effect regardless of input.
        let tag1 = Poly1305::mac(&key, &[0xff; 64]);
        key[0] ^= 1;
        let tag2 = Poly1305::mac(&key, &[0xff; 64]);
        assert_ne!(tag1, tag2);
        let empty = Poly1305::mac(&key, b"");
        // Empty message: tag = s (the pad) exactly.
        assert_eq!(&empty[..], &key[16..32]);
    }
}
