//! Fused CTR+GHASH kernel (x86-64).
//!
//! GCM's two halves are computationally independent per block: the CTR
//! keystream is pure AESENC work and the authentication pass is pure
//! PCLMULQDQ work. Running them as separate sweeps (the textbook layout)
//! walks the message twice and leaves one execution port idle in each sweep.
//! This module interleaves them: each 128-byte stride generates eight
//! keystream blocks, XORs them into the message in place, and feeds the
//! resulting ciphertext straight into two 4-block aggregated GHASH updates —
//! while the values are still in registers. Out-of-order execution then
//! overlaps the AESENC chains of stride *n+1* with the carry-less multiplies
//! of stride *n*, so AES and GHASH throughput add instead of serialize.
//!
//! Both entry points require `data.len() % 128 == 0`; callers route the tail
//! through the unfused block paths. Counter semantics are GCM `inc32` (only
//! the low 32 bits of the counter block increment), identical to
//! [`crate::aes::Aes::xor_ctr_keystream`].

#![cfg(target_arch = "x86_64")]

use crate::aes::{aesni, RoundKeys};
use crate::ghash::pclmul::{bswap, ghash4, load_elem, store_elem};
use std::arch::x86_64::*;

/// Bytes processed per fused stride (8 AES blocks).
pub(crate) const STRIDE: usize = 128;

#[inline(always)]
unsafe fn counter_block(base_hi: __m128i, ctr32: u32) -> __m128i {
    let word = _mm_set_epi32(ctr32.swap_bytes() as i32, 0, 0, 0);
    _mm_or_si128(base_hi, word)
}

/// Absorbs one 128-byte stride of ciphertext at `p` into the accumulator.
/// Loading from (L1-resident) memory instead of carrying the eight
/// ciphertext values in registers is what keeps the fused loop inside the
/// sixteen-xmm budget — carrying them live alongside the eight AES states
/// spills to the stack and costs more than the reload.
#[inline(always)]
unsafe fn ghash_stride(
    a: __m128i,
    p: *const __m128i,
    h1: __m128i,
    h2: __m128i,
    h3: __m128i,
    h4: __m128i,
) -> __m128i {
    let lo = [
        bswap(_mm_loadu_si128(p)),
        bswap(_mm_loadu_si128(p.add(1))),
        bswap(_mm_loadu_si128(p.add(2))),
        bswap(_mm_loadu_si128(p.add(3))),
    ];
    let a = ghash4(a, lo, h1, h2, h3, h4);
    let hi = [
        bswap(_mm_loadu_si128(p.add(4))),
        bswap(_mm_loadu_si128(p.add(5))),
        bswap(_mm_loadu_si128(p.add(6))),
        bswap(_mm_loadu_si128(p.add(7))),
    ];
    ghash4(a, hi, h1, h2, h3, h4)
}

/// Encrypts `data` in place with the CTR keystream starting at `icb` and
/// absorbs the produced ciphertext into the GHASH accumulator `acc` using
/// the precomputed `powers` H¹..H⁴. Returns the updated accumulator.
///
/// Software-pipelined one stride deep: iteration *s* encrypts stride *s*
/// while hashing the ciphertext stride *s−1* already in L1, so the AESENC
/// and PCLMUL chains of every iteration are independent and overlap under
/// out-of-order execution.
///
/// Requires `data.len()` to be a multiple of 128.
///
/// # Safety
/// The CPU must support `aes`, `pclmulqdq`, `sse2`, and `ssse3`.
#[target_feature(
    enable = "aes",
    enable = "pclmulqdq",
    enable = "sse2",
    enable = "ssse3"
)]
pub(crate) unsafe fn seal_blocks(
    keys: &RoundKeys,
    powers: &[u128; 4],
    icb: &[u8; 16],
    acc: u128,
    data: &mut [u8],
) -> u128 {
    debug_assert_eq!(data.len() % STRIDE, 0);
    if data.is_empty() {
        return acc;
    }
    let (rk, rounds) = aesni::load_keys(keys);
    let base = _mm_loadu_si128(icb.as_ptr() as *const __m128i);
    let mut ctr32 = u32::from_be_bytes([icb[12], icb[13], icb[14], icb[15]]);
    let word_mask = _mm_set_epi32(-1, 0, 0, 0);
    let base_hi = _mm_andnot_si128(word_mask, base);

    let h1 = load_elem(powers[0]);
    let h2 = load_elem(powers[1]);
    let h3 = load_elem(powers[2]);
    let h4 = load_elem(powers[3]);
    let mut a = load_elem(acc);

    let strides = data.len() / STRIDE;
    for s in 0..strides {
        let mut blocks = [_mm_setzero_si128(); 8];
        for b in blocks.iter_mut() {
            *b = _mm_xor_si128(counter_block(base_hi, ctr32), rk[0]);
            ctr32 = ctr32.wrapping_add(1);
        }
        for k in rk.iter().take(rounds).skip(1) {
            for b in blocks.iter_mut() {
                *b = _mm_aesenc_si128(*b, *k);
            }
        }
        let p = data.as_mut_ptr().add(s * STRIDE) as *mut __m128i;
        for (i, b) in blocks.iter().enumerate() {
            let ks = _mm_aesenclast_si128(*b, rk[rounds]);
            _mm_storeu_si128(p.add(i), _mm_xor_si128(_mm_loadu_si128(p.add(i)), ks));
        }
        if s > 0 {
            let q = data.as_ptr().add((s - 1) * STRIDE) as *const __m128i;
            a = ghash_stride(a, q, h1, h2, h3, h4);
        }
    }
    // Drain the pipeline: the last stride's ciphertext.
    let q = data.as_ptr().add((strides - 1) * STRIDE) as *const __m128i;
    a = ghash_stride(a, q, h1, h2, h3, h4);
    store_elem(a)
}

/// Decrypts `data` in place, absorbing the *ciphertext* (read before it is
/// overwritten) into the GHASH accumulator. Returns the updated accumulator.
///
/// Pipelined like [`seal_blocks`], but shifted: iteration *s* hashes the
/// (still-intact) ciphertext of stride *s* and decrypts stride *s−1*, whose
/// hash was taken one iteration earlier.
///
/// Requires `data.len()` to be a multiple of 128.
///
/// # Safety
/// The CPU must support `aes`, `pclmulqdq`, `sse2`, and `ssse3`.
#[target_feature(
    enable = "aes",
    enable = "pclmulqdq",
    enable = "sse2",
    enable = "ssse3"
)]
pub(crate) unsafe fn open_blocks(
    keys: &RoundKeys,
    powers: &[u128; 4],
    icb: &[u8; 16],
    acc: u128,
    data: &mut [u8],
) -> u128 {
    debug_assert_eq!(data.len() % STRIDE, 0);
    if data.is_empty() {
        return acc;
    }
    let (rk, rounds) = aesni::load_keys(keys);
    let base = _mm_loadu_si128(icb.as_ptr() as *const __m128i);
    let mut ctr32 = u32::from_be_bytes([icb[12], icb[13], icb[14], icb[15]]);
    let word_mask = _mm_set_epi32(-1, 0, 0, 0);
    let base_hi = _mm_andnot_si128(word_mask, base);

    let h1 = load_elem(powers[0]);
    let h2 = load_elem(powers[1]);
    let h3 = load_elem(powers[2]);
    let h4 = load_elem(powers[3]);
    let mut a = load_elem(acc);

    let strides = data.len() / STRIDE;
    for s in 0..strides {
        let q = data.as_ptr().add(s * STRIDE) as *const __m128i;
        a = ghash_stride(a, q, h1, h2, h3, h4);
        if s > 0 {
            let mut blocks = [_mm_setzero_si128(); 8];
            for b in blocks.iter_mut() {
                *b = _mm_xor_si128(counter_block(base_hi, ctr32), rk[0]);
                ctr32 = ctr32.wrapping_add(1);
            }
            for k in rk.iter().take(rounds).skip(1) {
                for b in blocks.iter_mut() {
                    *b = _mm_aesenc_si128(*b, *k);
                }
            }
            let p = data.as_mut_ptr().add((s - 1) * STRIDE) as *mut __m128i;
            for (i, b) in blocks.iter().enumerate() {
                let ks = _mm_aesenclast_si128(*b, rk[rounds]);
                _mm_storeu_si128(p.add(i), _mm_xor_si128(_mm_loadu_si128(p.add(i)), ks));
            }
        }
    }
    // Drain: decrypt the last stride.
    let mut blocks = [_mm_setzero_si128(); 8];
    for b in blocks.iter_mut() {
        *b = _mm_xor_si128(counter_block(base_hi, ctr32), rk[0]);
        ctr32 = ctr32.wrapping_add(1);
    }
    for k in rk.iter().take(rounds).skip(1) {
        for b in blocks.iter_mut() {
            *b = _mm_aesenc_si128(*b, *k);
        }
    }
    let p = data.as_mut_ptr().add((strides - 1) * STRIDE) as *mut __m128i;
    for (i, b) in blocks.iter().enumerate() {
        let ks = _mm_aesenclast_si128(*b, rk[rounds]);
        _mm_storeu_si128(p.add(i), _mm_xor_si128(_mm_loadu_si128(p.add(i)), ks));
    }
    store_elem(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes, Backend};
    use crate::ghash::GHash;

    fn fused_available(aes: &Aes, ghash: &GHash) -> bool {
        aes.backend() == Backend::AesNi && ghash.backend() == crate::ghash::MulBackend::Pclmul
    }

    /// The fused seal must equal the unfused two-sweep composition
    /// (CTR keystream, then GHASH over the ciphertext) bit for bit.
    #[test]
    fn fused_seal_matches_two_sweep() {
        let key = [0x5Au8; 16];
        let aes = Aes::new(&key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        let proto = GHash::new(&h);
        if !fused_available(&aes, &proto) {
            return;
        }
        let icb = {
            let mut b = [0x21u8; 16];
            b[12..].copy_from_slice(&7u32.to_be_bytes());
            b
        };
        for strides in [1usize, 2, 3, 9] {
            let len = strides * STRIDE;
            let plain: Vec<u8> = (0..len).map(|i| (i * 89 + 5) as u8).collect();

            let mut reference = plain.clone();
            aes.xor_ctr_keystream(&icb, &mut reference);
            let mut ref_ghash = proto.fresh();
            ref_ghash.update_padded(&reference);

            let mut fused = plain.clone();
            let mut g = proto.fresh();
            // SAFETY: guarded above — fused_available checked the features.
            let acc =
                unsafe { seal_blocks(aes.round_keys(), g.powers(), &icb, g.acc_raw(), &mut fused) };
            g.set_acc_raw(acc);

            assert_eq!(fused, reference, "ciphertext, strides = {strides}");
            assert_eq!(
                g.finalize(),
                ref_ghash.finalize(),
                "ghash, strides = {strides}"
            );
        }
    }

    /// Open must GHASH the ciphertext (not the plaintext) and invert seal.
    #[test]
    fn fused_open_inverts_seal_and_hashes_ciphertext() {
        let key = [0xC3u8; 16];
        let aes = Aes::new(&key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        let proto = GHash::new(&h);
        if !fused_available(&aes, &proto) {
            return;
        }
        let icb = [0x42u8; 16];
        let len = 4 * STRIDE;
        let plain: Vec<u8> = (0..len).map(|i| (i * 13 + 1) as u8).collect();

        let mut buf = plain.clone();
        let mut g_seal = proto.fresh();
        // SAFETY: guarded above — fused_available checked the features.
        let acc = unsafe {
            seal_blocks(
                aes.round_keys(),
                g_seal.powers(),
                &icb,
                g_seal.acc_raw(),
                &mut buf,
            )
        };
        g_seal.set_acc_raw(acc);

        let mut g_open = proto.fresh();
        // SAFETY: guarded above.
        let acc = unsafe {
            open_blocks(
                aes.round_keys(),
                g_open.powers(),
                &icb,
                g_open.acc_raw(),
                &mut buf,
            )
        };
        g_open.set_acc_raw(acc);

        assert_eq!(buf, plain, "open must invert seal");
        assert_eq!(
            g_seal.finalize(),
            g_open.finalize(),
            "both directions hash the same ciphertext"
        );
    }

    /// The accumulator handoff must compose with prior and subsequent
    /// unfused updates (AAD before, tail + lengths after).
    #[test]
    fn accumulator_composes_across_fused_boundary() {
        let key = [0x11u8; 16];
        let aes = Aes::new(&key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        let proto = GHash::new(&h);
        if !fused_available(&aes, &proto) {
            return;
        }
        let icb = [0x99u8; 16];
        let aad = b"associated data, 20b";
        let len = 2 * STRIDE;
        let plain: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();

        // Reference: unfused, one GHASH over aad || ct || lens.
        let mut ct = plain.clone();
        aes.xor_ctr_keystream(&icb, &mut ct);
        let mut reference = proto.fresh();
        reference.update_padded(aad);
        reference.update_padded(&ct);
        reference.update_lengths(aad.len() as u64, ct.len() as u64);

        // Fused: aad unfused, bulk fused, lengths unfused.
        let mut buf = plain.clone();
        let mut g = proto.fresh();
        g.update_padded(aad);
        // SAFETY: guarded above.
        let acc = unsafe { seal_blocks(aes.round_keys(), g.powers(), &icb, g.acc_raw(), &mut buf) };
        g.set_acc_raw(acc);
        g.update_lengths(aad.len() as u64, buf.len() as u64);

        assert_eq!(buf, ct);
        assert_eq!(g.finalize(), reference.finalize());
    }
}
