//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! The no-AES-NI cipher suite: a ChaCha20 keystream (SSE2 or scalar, see
//! [`crate::chacha`]) with a Poly1305 tag over `AAD ‖ ciphertext` under a
//! per-nonce one-time key drawn from keystream block 0. Because the tag
//! authenticates the *ciphertext*, forwarding hops can verify frames without
//! decrypting, and a failed open never produces plaintext — the tag check
//! completes before the keystream is ever applied.
//!
//! Framing (12-byte nonce, 16-byte tag) is identical to AES-GCM, so the wire
//! overhead of every suite in this crate is the same [`crate::WIRE_OVERHEAD`].

use crate::chacha::{ChaCha20, ChaChaBackend};
use crate::gcm::{OpenError, TAG_LEN};
use crate::nonce::Nonce;
use crate::poly1305::Poly1305;
use crate::Key;

/// Maximum plaintext length: the 32-bit block counter starts at 1 for data,
/// leaving 2^32 − 2 blocks of 64 bytes (≈ 256 GiB).
pub const MAX_PLAINTEXT_LEN_CHACHA: usize = ((1u64 << 32) - 2) as usize * 64;

/// A ChaCha20-Poly1305 AEAD instance.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    core: ChaCha20,
}

impl ChaCha20Poly1305 {
    /// Creates an instance from the collective's 128-bit [`Key`].
    ///
    /// ChaCha20 needs 256 key bits; the 128-bit world key is expanded with
    /// ChaCha20 itself as a PRF: the key doubled (`k ‖ k`) keys a block-0
    /// keystream call at the zero nonce, and the first 32 output bytes
    /// become the session key. Deterministic across backends.
    pub fn new(key: &Key) -> Self {
        Self::from_key_bytes(&Self::expand_key(key))
    }

    /// Like [`ChaCha20Poly1305::new`] but pinned to the scalar backend.
    pub fn new_soft(key: &Key) -> Self {
        Self::from_key_bytes_soft(&Self::expand_key(key))
    }

    /// Creates an instance from a full 256-bit key (RFC 8439 layout),
    /// selecting the fastest available backend.
    pub fn from_key_bytes(key: &[u8; 32]) -> Self {
        ChaCha20Poly1305 {
            core: ChaCha20::new(key),
        }
    }

    /// Creates an instance from a 256-bit key pinned to the scalar backend
    /// (for cross-checks and forced-soft dispatch).
    pub fn from_key_bytes_soft(key: &[u8; 32]) -> Self {
        ChaCha20Poly1305 {
            core: ChaCha20::new_soft(key),
        }
    }

    /// The ChaCha20 backend this instance dispatches to.
    pub fn backend(&self) -> ChaChaBackend {
        self.core.backend()
    }

    fn expand_key(key: &Key) -> [u8; 32] {
        let mut seed = [0u8; 32];
        seed[..16].copy_from_slice(key.as_bytes());
        seed[16..].copy_from_slice(key.as_bytes());
        let block = ChaCha20::new(&seed).block(&[0u8; 12], 0);
        let mut out = [0u8; 32];
        out.copy_from_slice(&block[..32]);
        out
    }

    /// The per-nonce Poly1305 one-time key (RFC 8439 §2.6): the first 32
    /// bytes of keystream block 0.
    fn poly_key(&self, nonce: &Nonce) -> [u8; 32] {
        let block = self.core.block(nonce.as_bytes(), 0);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block[..32]);
        otk
    }

    /// The §2.8 MAC input: `aad ‖ pad16 ‖ ct ‖ pad16 ‖ le64(|aad|) ‖ le64(|ct|)`.
    fn tag_of(&self, otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let zeros = [0u8; 16];
        let mut p = Poly1305::new(otk);
        p.update(aad);
        p.update(&zeros[..(16 - aad.len() % 16) % 16]);
        p.update(ciphertext);
        p.update(&zeros[..(16 - ciphertext.len() % 16) % 16]);
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&(aad.len() as u64).to_le_bytes());
        lens[8..].copy_from_slice(&(ciphertext.len() as u64).to_le_bytes());
        p.update(&lens);
        p.finalize()
    }

    /// Encrypts `data` in place and returns the 16-byte tag.
    /// Panics if `data` exceeds [`MAX_PLAINTEXT_LEN_CHACHA`].
    pub fn seal_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        assert!(
            data.len() <= MAX_PLAINTEXT_LEN_CHACHA,
            "ChaCha20 plaintext exceeds the 32-bit-counter length limit"
        );
        let otk = self.poly_key(nonce);
        self.core.xor(nonce.as_bytes(), 1, data);
        self.tag_of(&otk, aad, data)
    }

    /// Verifies `tag` and decrypts `data` (ciphertext) in place.
    ///
    /// The tag covers the ciphertext, so verification happens **before**
    /// decryption; on mismatch the buffer is returned untouched (still
    /// ciphertext — no plaintext is ever produced).
    pub fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        self.verify_detached(nonce, aad, data, tag)?;
        self.core.xor(nonce.as_bytes(), 1, data);
        Ok(())
    }

    /// Verifies the tag of `ciphertext` without decrypting (one Poly1305
    /// sweep plus one keystream block) — the per-hop forwarding check.
    pub fn verify_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        if tag.len() != TAG_LEN || ciphertext.len() > MAX_PLAINTEXT_LEN_CHACHA {
            return Err(OpenError::Truncated);
        }
        let otk = self.poly_key(nonce);
        let expect = self.tag_of(&otk, aad, ciphertext);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(OpenError::TagMismatch);
        }
        Ok(())
    }

    /// Encrypts and authenticates: returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_in_place_detached(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag`; returns the plaintext.
    pub fn open(&self, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        if sealed.len() < TAG_LEN {
            return Err(OpenError::Truncated);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut pt = ct.to_vec();
        self.open_in_place_detached(nonce, aad, &mut pt, tag)?;
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_cipher(soft: bool) -> ChaCha20Poly1305 {
        let mut key = [0u8; 32];
        key.copy_from_slice(&hex(
            "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f",
        ));
        if soft {
            ChaCha20Poly1305::from_key_bytes_soft(&key)
        } else {
            ChaCha20Poly1305::from_key_bytes(&key)
        }
    }

    fn rfc_nonce() -> Nonce {
        let mut n = [0u8; 12];
        n.copy_from_slice(&hex("070000004041424344454647"));
        Nonce::from_bytes(n)
    }

    /// RFC 8439 §2.6.2: the one-time Poly1305 key derivation vector.
    #[test]
    fn poly_key_gen_known_answer() {
        let mut key = [0u8; 32];
        key.copy_from_slice(&hex(
            "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f",
        ));
        let mut n = [0u8; 12];
        n.copy_from_slice(&hex("000000000001020304050607"));
        let cipher = ChaCha20Poly1305::from_key_bytes(&key);
        let otk = cipher.poly_key(&Nonce::from_bytes(n));
        assert_eq!(
            &otk[..],
            &hex("8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646")[..]
        );
    }

    /// RFC 8439 §2.8.2: the full AEAD vector, on both backends.
    #[test]
    fn aead_known_answer() {
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let aad = hex("50515253c0c1c2c3c4c5c6c7");
        let expect_ct = hex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expect_tag = hex("1ae10b594f09e26a7e902ecbd0600691");
        for soft in [false, true] {
            let cipher = rfc_cipher(soft);
            let sealed = cipher.seal(&rfc_nonce(), &aad, pt);
            assert_eq!(&sealed[..pt.len()], &expect_ct[..], "soft={soft}");
            assert_eq!(&sealed[pt.len()..], &expect_tag[..], "soft={soft}");
            let back = cipher.open(&rfc_nonce(), &aad, &sealed).unwrap();
            assert_eq!(&back[..], &pt[..]);
        }
    }

    #[test]
    fn tamper_and_wrong_aad_rejected() {
        let cipher = rfc_cipher(false);
        let nonce = rfc_nonce();
        let mut sealed = cipher.seal(&nonce, b"aad", b"attack at dawn");
        assert!(cipher.open(&nonce, b"other", &sealed).is_err());
        for i in 0..sealed.len() {
            sealed[i] ^= 0x10;
            assert_eq!(
                cipher.open(&nonce, b"aad", &sealed),
                Err(OpenError::TagMismatch),
                "flip at {i}"
            );
            sealed[i] ^= 0x10;
        }
        assert!(cipher.open(&nonce, b"aad", &sealed).is_ok());
    }

    #[test]
    fn verify_matches_open_and_world_key_roundtrips() {
        let key = Key::from_bytes([0x42u8; 16]);
        let cipher = ChaCha20Poly1305::new(&key);
        let soft = ChaCha20Poly1305::new_soft(&key);
        let nonce = Nonce::from_bytes([9u8; 12]);
        for len in [0usize, 1, 16, 63, 64, 65, 500] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 11 % 251) as u8).collect();
            let sealed = cipher.seal(&nonce, b"hdr", &pt);
            // The two backends produce identical frames.
            assert_eq!(sealed, soft.seal(&nonce, b"hdr", &pt), "len = {len}");
            let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
            assert!(cipher.verify_detached(&nonce, b"hdr", ct, tag).is_ok());
            assert!(cipher.verify_detached(&nonce, b"bad", ct, tag).is_err());
            assert_eq!(soft.open(&nonce, b"hdr", &sealed).unwrap(), pt);
        }
    }

    #[test]
    fn failed_open_leaves_ciphertext_untouched() {
        let cipher = rfc_cipher(false);
        let nonce = rfc_nonce();
        let mut buf = b"some secret payload".to_vec();
        let mut tag = cipher.seal_in_place_detached(&nonce, b"", &mut buf);
        let snapshot = buf.clone();
        tag[0] ^= 1;
        assert!(cipher
            .open_in_place_detached(&nonce, b"", &mut buf, &tag)
            .is_err());
        assert_eq!(buf, snapshot, "no partial decryption on tag mismatch");
    }
}
