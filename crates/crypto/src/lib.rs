//! # eag-crypto — pluggable AEAD suites for encrypted collectives
//!
//! From-scratch authenticated encryption for the paper *Efficient Algorithms
//! for Encrypted All-gather Operation* (IPDPS 2021). The paper's scheme is
//! AES-128-GCM with a random 96-bit nonce (following Naser et al., CLUSTER
//! 2019); this crate implements that plus two alternative cipher suites
//! behind one [`Aead`] trait, selected at runtime via [`CipherSuite`]:
//!
//! - **AES-128-GCM** ([`gcm`]) — the default; fused single-pass
//!   CTR+GHASH kernel on AES-NI + PCLMULQDQ hardware.
//! - **AES-128-GCM-SIV** ([`gcm_siv`]) — nonce-misuse-resistant (RFC 8452);
//!   POLYVAL rides the same PCLMUL kernel bit-reflected.
//! - **ChaCha20-Poly1305** ([`chacha20poly1305`]) — for hosts without
//!   AES-NI (RFC 8439); SSE2 or scalar.
//!
//! Every suite frames messages identically — `nonce(12) ‖ ct ‖ tag(16)`,
//! exactly **28 bytes** ([`WIRE_OVERHEAD`]) over the plaintext — so suite
//! choice is session configuration, not wire format. The framing helpers
//! ([`seal_message`], [`seal_segments_into`], [`open_frame_in_place`], …)
//! are generic over `A: Aead + ?Sized` and work with `&dyn Aead`.
//!
//! ## Layout
//! - [`aead`] — the [`Aead`] trait and [`CipherSuite`] selection.
//! - [`aes`] — the AES block cipher (portable soft / constant-time soft /
//!   runtime-detected AES-NI).
//! - [`ghash`] — GHASH over GF(2^128) (bitwise / table-driven / PCLMULQDQ).
//! - [`polyval`] — POLYVAL, GHASH's bit-reflected twin (RFC 8452 App. A).
//! - [`ctr`] — the big-endian CTR keystream used by GCM.
//! - [`gcm`], [`gcm_siv`], [`chacha20poly1305`] — the three AEADs.
//! - [`chacha`], [`poly1305`] — the ChaCha20-Poly1305 primitives.
//! - [`kdf`] — per-session AEAD keys derived from a service master key
//!   (multi-tenant session layer, with rotation epochs).
//! - [`nonce`] — random and deterministic nonce sources.
//! - [`dispatch`] — the shared soft-force override for CPU dispatch.
//! - [`probe`] — wall-clock throughput probes per suite.
//!
//! ## Example
//! ```
//! use eag_crypto::{AesGcm128, CipherSuite, Key, Nonce};
//!
//! let key = Key::from_bytes([0u8; 16]);
//! let cipher = AesGcm128::new(&key);
//! let nonce = Nonce::from_bytes([1u8; 12]);
//! let ct = cipher.seal(&nonce, b"header", b"secret payload");
//! let pt = cipher.open(&nonce, b"header", &ct).expect("authentic");
//! assert_eq!(pt, b"secret payload");
//!
//! // Suite-generic: the same framing under a misuse-resistant AEAD.
//! let aead = CipherSuite::AesGcmSiv128.aead_for_key(&key);
//! let mut nonces = eag_crypto::NonceSource::seeded(7);
//! let wire = eag_crypto::seal_message(&*aead, &mut nonces, b"hdr", b"payload");
//! assert_eq!(eag_crypto::open_message(&*aead, b"hdr", &wire).unwrap(), b"payload");
//! ```

#![deny(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod aead;
pub mod aes;
pub mod chacha;
pub mod chacha20poly1305;
pub mod ctr;
pub mod dispatch;
mod fused;
pub mod gcm;
pub mod gcm_siv;
pub mod ghash;
pub mod kdf;
pub mod nonce;
pub mod poly1305;
pub mod polyval;
pub mod probe;

pub use aead::{Aead, CipherSuite};
pub use aes::{Aes, Aes128, KeySize};
pub use chacha20poly1305::ChaCha20Poly1305;
pub use gcm::{AesGcm, AesGcm128, OpenError, MAX_PLAINTEXT_LEN, TAG_LEN};
pub use gcm_siv::AesGcmSiv;
pub use kdf::SessionKeychain;
pub use nonce::{Nonce, NonceSource, NONCE_LEN};

/// Total per-message wire overhead of the encrypted framing:
/// 12-byte nonce + 16-byte authentication tag. This is the "+28 bytes"
/// constant the paper mentions in Section IV.
pub const WIRE_OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// A 128-bit AES key.
#[derive(Clone)]
pub struct Key([u8; 16]);

impl Key {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Key(bytes)
    }

    /// Generates a uniformly random key.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; 16];
        rng.fill_bytes(&mut k);
        Key(k)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Key(<redacted>)")
    }
}

/// Seals `plaintext` into the paper's wire format:
/// `nonce(12) || ciphertext(len) || tag(16)`.
///
/// The nonce is drawn from `source`; the same `aad` must be presented to
/// [`open_message`].
pub fn seal_message<A: Aead + ?Sized>(
    cipher: &A,
    source: &mut NonceSource,
    aad: &[u8],
    plaintext: &[u8],
) -> Vec<u8> {
    let mut out = Vec::new();
    seal_message_into(cipher, source, aad, plaintext, &mut out);
    out
}

/// Seals `plaintext` into `out` (cleared first) in the wire format of
/// [`seal_message`], reusing `out`'s allocation when it is large enough.
///
/// This is the steady-state path for the runtime: a per-rank scratch buffer
/// makes every seal allocation-free after the first message of each size
/// class.
pub fn seal_message_into<A: Aead + ?Sized>(
    cipher: &A,
    source: &mut NonceSource,
    aad: &[u8],
    plaintext: &[u8],
    out: &mut Vec<u8>,
) {
    out.clear();
    out.reserve(plaintext.len() + WIRE_OVERHEAD);
    seal_segments_into(cipher, source, aad, std::iter::once(plaintext), out);
}

/// Seals a plaintext presented as a sequence of byte segments (cleared into
/// `out` first): the segments are gathered directly into the wire frame in
/// order, then encrypted in place. This is the zero-staging path for
/// rope-backed payloads — the only plaintext copy is the gather into the
/// frame that becomes the wire message itself.
pub fn seal_segments_into<'a, A: Aead + ?Sized>(
    cipher: &A,
    source: &mut NonceSource,
    aad: &[u8],
    segments: impl IntoIterator<Item = &'a [u8]>,
    out: &mut Vec<u8>,
) {
    let nonce = source.next_nonce();
    out.clear();
    out.extend_from_slice(nonce.as_bytes());
    for seg in segments {
        out.extend_from_slice(seg);
    }
    let tag = cipher.seal_in_place_detached(&nonce, aad, &mut out[NONCE_LEN..]);
    out.extend_from_slice(&tag);
}

/// Opens a message produced by [`seal_message`]; returns the plaintext or an
/// error if the frame is malformed or fails authentication.
pub fn open_message<A: Aead + ?Sized>(
    cipher: &A,
    aad: &[u8],
    wire: &[u8],
) -> Result<Vec<u8>, OpenError> {
    let mut buf = wire.to_vec();
    open_message_in_place(cipher, aad, &mut buf)?;
    Ok(buf)
}

/// Opens a wire frame in place: on success `wire` holds just the plaintext
/// (the nonce and tag framing are stripped); on failure `wire`'s payload
/// bytes are zeroed and the error is returned.
///
/// The allocation-free counterpart of [`open_message`] — the decrypt happens
/// inside the frame's own buffer.
pub fn open_message_in_place<A: Aead + ?Sized>(
    cipher: &A,
    aad: &[u8],
    wire: &mut Vec<u8>,
) -> Result<(), OpenError> {
    let pt = open_frame_in_place(cipher, aad, wire)?;
    wire.truncate(pt.end);
    wire.drain(..pt.start);
    Ok(())
}

/// Decrypts a wire frame in place without restitching the buffer: on success
/// the plaintext sits at the returned range of `wire` (the nonce prefix and
/// tag suffix are left untouched around it) and no bytes move.
///
/// This is the zero-copy counterpart of [`open_message_in_place`] for callers
/// that can hold a view into the frame — freeze the buffer and slice the
/// range instead of paying the `drain` memmove.
pub fn open_frame_in_place<A: Aead + ?Sized>(
    cipher: &A,
    aad: &[u8],
    wire: &mut [u8],
) -> Result<std::ops::Range<usize>, OpenError> {
    if wire.len() < WIRE_OVERHEAD {
        return Err(OpenError::Truncated);
    }
    let mut nb = [0u8; NONCE_LEN];
    nb.copy_from_slice(&wire[..NONCE_LEN]);
    let nonce = Nonce::from_bytes(nb);
    let ct_end = wire.len() - TAG_LEN;
    let (frame, tag) = wire.split_at_mut(ct_end);
    cipher.open_in_place_detached(&nonce, aad, &mut frame[NONCE_LEN..], tag)?;
    Ok(NONCE_LEN..ct_end)
}

/// Verifies a wire frame produced by [`seal_message`] without decrypting
/// it: parses `nonce(12) || ciphertext || tag(16)` and checks the tag
/// against the AAD and ciphertext.
///
/// Forwarding hops use this for in-flight integrity: GCM authenticates the
/// ciphertext, so no plaintext is produced (or zeroized) on the hot path.
pub fn verify_message<A: Aead + ?Sized>(
    cipher: &A,
    aad: &[u8],
    wire: &[u8],
) -> Result<(), OpenError> {
    if wire.len() < WIRE_OVERHEAD {
        return Err(OpenError::Truncated);
    }
    let mut nb = [0u8; NONCE_LEN];
    nb.copy_from_slice(&wire[..NONCE_LEN]);
    let nonce = Nonce::from_bytes(nb);
    let ct_end = wire.len() - TAG_LEN;
    cipher.verify_detached(&nonce, aad, &wire[NONCE_LEN..ct_end], &wire[ct_end..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_message_matches_open_verdict() {
        let key = Key::from_bytes([7u8; 16]);
        let cipher = AesGcm128::new(&key);
        let mut source = NonceSource::seeded(9);
        for len in [0usize, 1, 16, 129, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
            let mut wire = seal_message(&cipher, &mut source, b"aad", &pt);
            assert!(verify_message(&cipher, b"aad", &wire).is_ok());
            assert!(verify_message(&cipher, b"bad", &wire).is_err());
            for i in 0..wire.len() {
                wire[i] ^= 0x40;
                assert!(
                    verify_message(&cipher, b"aad", &wire).is_err(),
                    "flip at byte {i} of len {len} undetected"
                );
                wire[i] ^= 0x40;
            }
            // Verification must not consume the frame: open still succeeds.
            assert_eq!(open_message(&cipher, b"aad", &wire).unwrap(), pt);
        }
        assert!(matches!(
            verify_message(&cipher, b"", &[0u8; 27]),
            Err(OpenError::Truncated)
        ));
    }

    #[test]
    fn wire_overhead_is_28_bytes() {
        assert_eq!(WIRE_OVERHEAD, 28);
    }

    #[test]
    fn seal_open_roundtrip() {
        let key = Key::from_bytes([7u8; 16]);
        let cipher = AesGcm128::new(&key);
        let mut source = NonceSource::seeded(42);
        for len in [0usize, 1, 15, 16, 17, 255, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let wire = seal_message(&cipher, &mut source, b"ctx", &pt);
            assert_eq!(wire.len(), pt.len() + WIRE_OVERHEAD);
            let back = open_message(&cipher, b"ctx", &wire).unwrap();
            assert_eq!(back, pt);
        }
    }

    #[test]
    fn open_rejects_wrong_aad() {
        let key = Key::from_bytes([7u8; 16]);
        let cipher = AesGcm128::new(&key);
        let mut source = NonceSource::seeded(42);
        let wire = seal_message(&cipher, &mut source, b"aad-a", b"hello");
        assert!(open_message(&cipher, b"aad-b", &wire).is_err());
    }

    #[test]
    fn open_rejects_truncated_frame() {
        let key = Key::from_bytes([7u8; 16]);
        let cipher = AesGcm128::new(&key);
        assert!(matches!(
            open_message(&cipher, b"", &[0u8; 27]),
            Err(OpenError::Truncated)
        ));
    }

    #[test]
    fn seal_segments_matches_contiguous_seal() {
        let key = Key::from_bytes([3u8; 16]);
        let cipher = AesGcm128::new(&key);
        let pt: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 128, 299, 300] {
            let whole = seal_message(&cipher, &mut NonceSource::seeded(5), b"aad", &pt);
            let mut gathered = Vec::new();
            seal_segments_into(
                &cipher,
                &mut NonceSource::seeded(5),
                b"aad",
                [&pt[..split], &pt[split..]],
                &mut gathered,
            );
            assert_eq!(whole, gathered, "split at {split}");
        }
    }

    #[test]
    fn open_frame_in_place_returns_plaintext_range() {
        let key = Key::from_bytes([4u8; 16]);
        let cipher = AesGcm128::new(&key);
        let mut source = NonceSource::seeded(8);
        for len in [0usize, 1, 64, 333] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let mut wire = seal_message(&cipher, &mut source, b"hdr", &pt);
            let before = wire.len();
            let range = open_frame_in_place(&cipher, b"hdr", &mut wire).unwrap();
            assert_eq!(wire.len(), before, "frame length must not change");
            assert_eq!(range, NONCE_LEN..before - TAG_LEN);
            assert_eq!(&wire[range], &pt[..]);
        }
        let mut short = vec![0u8; WIRE_OVERHEAD - 1];
        assert!(matches!(
            open_frame_in_place(&cipher, b"", &mut short),
            Err(OpenError::Truncated)
        ));
        let mut tampered = seal_message(&cipher, &mut source, b"hdr", b"payload");
        tampered[NONCE_LEN] ^= 1;
        assert!(open_frame_in_place(&cipher, b"hdr", &mut tampered).is_err());
    }

    #[test]
    fn key_debug_redacts() {
        let key = Key::from_bytes([9u8; 16]);
        assert_eq!(format!("{key:?}"), "Key(<redacted>)");
    }
}
