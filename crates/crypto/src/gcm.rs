//! AES-128-GCM authenticated encryption (NIST SP 800-38D).

use crate::aes::Aes128;
use crate::ctr::{gctr_xor, inc32};
use crate::ghash::GHash;
use crate::nonce::{Nonce, NONCE_LEN};
use crate::Key;

/// Authentication tag length in bytes (full 128-bit tags).
pub const TAG_LEN: usize = 16;

/// Maximum plaintext length GCM permits with a 96-bit IV:
/// (2^32 − 2) blocks of 16 bytes (NIST SP 800-38D §5.2.1.1). Beyond this the
/// 32-bit counter would wrap and reuse keystream.
pub const MAX_PLAINTEXT_LEN: usize = ((1u64 << 32) - 2) as usize * 16;

/// Decryption failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// Frame shorter than the minimum (nonce + tag).
    Truncated,
    /// Authentication tag mismatch: the ciphertext or AAD was modified.
    TagMismatch,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Truncated => f.write_str("ciphertext frame truncated"),
            OpenError::TagMismatch => f.write_str("authentication tag mismatch"),
        }
    }
}

impl std::error::Error for OpenError {}

/// An AES-GCM AEAD instance (128-, 192-, or 256-bit key).
///
/// `seal` produces `ciphertext || tag(16)`; `open` verifies and strips the
/// tag. The in-place variants ([`AesGcm::seal_in_place_detached`] /
/// [`AesGcm::open_in_place_detached`]) transform the buffer without
/// allocating. Nonces are 96-bit and must be unique per key (the library
/// draws them at random, as the paper does).
///
/// When the CPU has both AES-NI and PCLMULQDQ, the bulk of every message
/// runs through the fused single-pass CTR+GHASH kernel (`crate::fused`);
/// otherwise the portable two-sweep layout is used. All paths compute the
/// same function (NIST SP 800-38D).
#[derive(Clone)]
pub struct AesGcm {
    aes: Aes128,
    /// Per-key GHASH prototype keyed by the hash subkey H = E_K(0^128):
    /// key setup (byte table / H-powers) happens once here; every message
    /// stamps a fresh accumulator off it without allocating.
    ghash_proto: GHash,
    /// Whether the fused CTR+GHASH kernel is usable (AES-NI + PCLMULQDQ).
    fused: bool,
}

/// AES-GCM-128: the scheme the paper uses (BoringSSL AES-GCM-128).
pub type AesGcm128 = AesGcm;

impl AesGcm {
    /// Creates an AES-128-GCM instance from a 128-bit [`Key`].
    pub fn new(key: &Key) -> Self {
        Self::with_key_bytes(key.as_bytes())
    }

    /// Creates an instance from raw key bytes (16, 24, or 32 of them —
    /// AES-128/192/256-GCM respectively).
    pub fn with_key_bytes(key: &[u8]) -> Self {
        let aes = crate::aes::Aes::new(key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        let ghash_proto = GHash::new(&h);
        let fused = aes.backend() == crate::aes::Backend::AesNi
            && ghash_proto.backend() == crate::ghash::MulBackend::Pclmul;
        AesGcm {
            aes,
            ghash_proto,
            fused,
        }
    }

    /// Computes the pre-counter block J0 for a 96-bit IV: `IV || 0^31 || 1`.
    fn j0(nonce: &Nonce) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..NONCE_LEN].copy_from_slice(nonce.as_bytes());
        j0[15] = 1;
        j0
    }

    /// Returns `icb` advanced by `blocks` GCM `inc32` steps.
    fn ctr_add(icb: &[u8; 16], blocks: u32) -> [u8; 16] {
        let mut out = *icb;
        let ctr = u32::from_be_bytes([icb[12], icb[13], icb[14], icb[15]]).wrapping_add(blocks);
        out[12..].copy_from_slice(&ctr.to_be_bytes());
        out
    }

    /// How many leading bytes of an `len`-byte message the fused kernel
    /// handles (a multiple of its 128-byte stride; 0 when unfused).
    fn fused_prefix(&self, len: usize) -> usize {
        if self.fused {
            len & !(128 - 1)
        } else {
            0
        }
    }

    /// Encrypts `data` in place and returns the 16-byte authentication tag.
    ///
    /// This is the allocation-free core of [`AesGcm::seal`]: the caller
    /// provides the plaintext in a mutable buffer and receives the
    /// ciphertext in the same buffer. Panics if `data` exceeds
    /// [`MAX_PLAINTEXT_LEN`] (the counter would wrap and reuse keystream).
    pub fn seal_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        assert!(
            data.len() <= MAX_PLAINTEXT_LEN,
            "GCM plaintext exceeds the SP 800-38D length limit"
        );
        let j0 = Self::j0(nonce);
        let mut icb = j0;
        inc32(&mut icb);

        let mut g = self.ghash_proto.fresh();
        g.update_padded(aad);

        let bulk = self.fused_prefix(data.len());
        #[cfg(target_arch = "x86_64")]
        if bulk > 0 {
            // SAFETY: `fused` is set only when the CPU reports aes +
            // pclmulqdq + sse2 + ssse3; `bulk` is a multiple of 128.
            let acc = unsafe {
                crate::fused::seal_blocks(
                    self.aes.round_keys(),
                    g.powers(),
                    &icb,
                    g.acc_raw(),
                    &mut data[..bulk],
                )
            };
            g.set_acc_raw(acc);
        }
        if bulk < data.len() {
            let tail_icb = Self::ctr_add(&icb, (bulk / 16) as u32);
            gctr_xor(&self.aes, &tail_icb, &mut data[bulk..]);
            g.update_padded(&data[bulk..]);
        }
        g.update_lengths(aad.len() as u64, data.len() as u64);
        self.finish_tag(&j0, &g)
    }

    /// Verifies `tag` and decrypts `data` (ciphertext) in place.
    ///
    /// The allocation-free core of [`AesGcm::open`]. On tag mismatch the
    /// buffer is zeroed (the single-pass layout decrypts before the tag
    /// check completes, and unauthenticated plaintext must not escape) and
    /// [`OpenError::TagMismatch`] is returned.
    pub fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        if tag.len() != TAG_LEN || data.len() > MAX_PLAINTEXT_LEN {
            return Err(OpenError::Truncated);
        }
        let j0 = Self::j0(nonce);
        let mut icb = j0;
        inc32(&mut icb);

        let mut g = self.ghash_proto.fresh();
        g.update_padded(aad);

        let bulk = self.fused_prefix(data.len());
        #[cfg(target_arch = "x86_64")]
        if bulk > 0 {
            // SAFETY: `fused` is set only when the CPU reports aes +
            // pclmulqdq + sse2 + ssse3; `bulk` is a multiple of 128.
            let acc = unsafe {
                crate::fused::open_blocks(
                    self.aes.round_keys(),
                    g.powers(),
                    &icb,
                    g.acc_raw(),
                    &mut data[..bulk],
                )
            };
            g.set_acc_raw(acc);
        }
        if bulk < data.len() {
            // GHASH runs over the ciphertext, so absorb before decrypting.
            g.update_padded(&data[bulk..]);
            let tail_icb = Self::ctr_add(&icb, (bulk / 16) as u32);
            gctr_xor(&self.aes, &tail_icb, &mut data[bulk..]);
        }
        g.update_lengths(aad.len() as u64, data.len() as u64);
        let expect = self.finish_tag(&j0, &g);

        // Constant-time tag comparison.
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            data.fill(0);
            return Err(OpenError::TagMismatch);
        }
        Ok(())
    }

    /// Verifies the authentication tag of `ciphertext` **without
    /// decrypting** it.
    ///
    /// GCM's tag is a function of the AAD and the *ciphertext*, so an
    /// intermediate hop that forwards sealed frames verbatim (the paper's
    /// ring/recursive-doubling forwarding chains) can authenticate a frame
    /// it is not the final consumer of: one GHASH sweep plus two block
    /// encryptions, no plaintext ever materialized. This is the detection
    /// primitive behind the runtime's per-hop tamper recovery — the hop
    /// that received a corrupted frame NACKs its immediate sender instead
    /// of letting the corruption surface ranks later at the consumer.
    pub fn verify_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        if tag.len() != TAG_LEN || ciphertext.len() > MAX_PLAINTEXT_LEN {
            return Err(OpenError::Truncated);
        }
        let j0 = Self::j0(nonce);
        let mut g = self.ghash_proto.fresh();
        g.update_padded(aad);
        g.update_padded(ciphertext);
        g.update_lengths(aad.len() as u64, ciphertext.len() as u64);
        let expect = self.finish_tag(&j0, &g);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(OpenError::TagMismatch);
        }
        Ok(())
    }

    /// Encrypts and authenticates: returns `ciphertext || tag`.
    /// Panics if `plaintext` exceeds [`MAX_PLAINTEXT_LEN`] (the counter
    /// would wrap and reuse keystream).
    pub fn seal(&self, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_in_place_detached(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag`; returns the plaintext.
    pub fn open(&self, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        if sealed.len() < TAG_LEN {
            return Err(OpenError::Truncated);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut pt = ct.to_vec();
        self.open_in_place_detached(nonce, aad, &mut pt, tag)?;
        Ok(pt)
    }

    /// T = MSB_128( GHASH_H(A, C) ^ E_K(J0) ) for a finalized GHASH state.
    fn finish_tag(&self, j0: &[u8; 16], g: &GHash) -> [u8; TAG_LEN] {
        let s = g.finalize();
        let mut ekj0 = *j0;
        self.aes.encrypt_block(&mut ekj0);
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ ekj0[i];
        }
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn key_of(s: &str) -> Key {
        let mut k = [0u8; 16];
        k.copy_from_slice(&hex(s));
        Key::from_bytes(k)
    }

    fn nonce_of(s: &str) -> Nonce {
        let mut n = [0u8; 12];
        n.copy_from_slice(&hex(s));
        Nonce::from_bytes(n)
    }

    /// GCM spec test case 1: empty plaintext, empty AAD.
    #[test]
    fn gcm_test_case_1() {
        let gcm = AesGcm128::new(&key_of("00000000000000000000000000000000"));
        let nonce = nonce_of("000000000000000000000000");
        let sealed = gcm.seal(&nonce, b"", b"");
        assert_eq!(sealed, hex("58e2fccefa7e3061367f1d57a4e7455a"));
        assert_eq!(gcm.open(&nonce, b"", &sealed).unwrap(), b"");
    }

    /// GCM spec test case 2: one zero block.
    #[test]
    fn gcm_test_case_2() {
        let gcm = AesGcm128::new(&key_of("00000000000000000000000000000000"));
        let nonce = nonce_of("000000000000000000000000");
        let pt = hex("00000000000000000000000000000000");
        let sealed = gcm.seal(&nonce, b"", &pt);
        assert_eq!(
            sealed,
            hex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
        assert_eq!(gcm.open(&nonce, b"", &sealed).unwrap(), pt);
    }

    /// GCM spec test case 3: 4-block plaintext, no AAD.
    #[test]
    fn gcm_test_case_3() {
        let gcm = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_of("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = gcm.seal(&nonce, b"", &pt);
        let expect_ct = hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        let expect_tag = hex("4d5c2af327cd64a62cf35abd2ba6fab4");
        assert_eq!(&sealed[..pt.len()], &expect_ct[..]);
        assert_eq!(&sealed[pt.len()..], &expect_tag[..]);
        assert_eq!(gcm.open(&nonce, b"", &sealed).unwrap(), pt);
    }

    /// GCM spec test case 4: partial final block plus AAD.
    #[test]
    fn gcm_test_case_4() {
        let gcm = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_of("cafebabefacedbaddecaf888");
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let sealed = gcm.seal(&nonce, &aad, &pt);
        let expect_ct = hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
        );
        let expect_tag = hex("5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(&sealed[..pt.len()], &expect_ct[..]);
        assert_eq!(&sealed[pt.len()..], &expect_tag[..]);
        assert_eq!(gcm.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    /// GCM spec test case 13: AES-256, empty plaintext.
    #[test]
    fn gcm_test_case_13() {
        let gcm = AesGcm::with_key_bytes(&[0u8; 32]);
        let nonce = nonce_of("000000000000000000000000");
        let sealed = gcm.seal(&nonce, b"", b"");
        assert_eq!(sealed, hex("530f8afbc74536b9a963b4f1c4cb738b"));
    }

    /// GCM spec test case 14: AES-256, one zero block.
    #[test]
    fn gcm_test_case_14() {
        let gcm = AesGcm::with_key_bytes(&[0u8; 32]);
        let nonce = nonce_of("000000000000000000000000");
        let sealed = gcm.seal(&nonce, b"", &[0u8; 16]);
        assert_eq!(
            sealed,
            hex("cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919")
        );
        assert_eq!(gcm.open(&nonce, b"", &sealed).unwrap(), vec![0u8; 16]);
    }

    /// AES-192- and AES-256-GCM roundtrip with AAD across sizes.
    #[test]
    fn gcm_larger_keys_roundtrip() {
        for key_len in [24usize, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 11 + 5) as u8).collect();
            let gcm = AesGcm::with_key_bytes(&key);
            let nonce = nonce_of("cafebabefacedbaddecaf888");
            for len in [0usize, 1, 16, 61, 255] {
                let pt: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
                let sealed = gcm.seal(&nonce, b"hdr", &pt);
                assert_eq!(gcm.open(&nonce, b"hdr", &sealed).unwrap(), pt);
                assert!(gcm.open(&nonce, b"other", &sealed).is_err());
            }
        }
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let gcm = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_of("cafebabefacedbaddecaf888");
        let mut sealed = gcm.seal(&nonce, b"aad", b"attack at dawn");
        for i in 0..sealed.len() {
            sealed[i] ^= 0x01;
            assert_eq!(
                gcm.open(&nonce, b"aad", &sealed),
                Err(OpenError::TagMismatch),
                "bit flip at byte {i} must be detected"
            );
            sealed[i] ^= 0x01;
        }
        assert!(gcm.open(&nonce, b"aad", &sealed).is_ok());
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let gcm = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308308"));
        let sealed = gcm.seal(&nonce_of("cafebabefacedbaddecaf888"), b"", b"x");
        assert!(gcm
            .open(&nonce_of("cafebabefacedbaddecaf889"), b"", &sealed)
            .is_err());
    }

    #[test]
    fn wrong_key_is_rejected() {
        let a = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308308"));
        let b = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308309"));
        let nonce = nonce_of("cafebabefacedbaddecaf888");
        let sealed = a.seal(&nonce, b"", b"x");
        assert!(b.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn truncated_sealed_is_rejected() {
        let gcm = AesGcm128::new(&key_of("feffe9928665731c6d6a8f9467308308"));
        assert_eq!(
            gcm.open(&nonce_of("cafebabefacedbaddecaf888"), b"", &[0u8; 15]),
            Err(OpenError::Truncated)
        );
    }
}
