//! CTR keystream generation for GCM (NIST SP 800-38D §6.5, `GCTR`).

use crate::aes::Aes128;

/// Increments the low 32 bits of a counter block (GCM `inc32`).
#[inline]
pub fn inc32(block: &mut [u8; 16]) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..].copy_from_slice(&ctr.to_be_bytes());
}

/// XORs `data` with the keystream `E_K(icb), E_K(inc32(icb)), ...` in place.
///
/// This is GCTR_K(ICB, X). The work is delegated to the cipher's fused CTR
/// path (`Aes128::xor_ctr_keystream`), which pipelines eight blocks under
/// AES-NI with the round keys hoisted out of the loop.
pub fn gctr_xor(aes: &Aes128, icb: &[u8; 16], data: &mut [u8]) {
    aes.xor_ctr_keystream(icb, data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc32_wraps_only_low_word() {
        let mut b = [0xFFu8; 16];
        inc32(&mut b);
        assert_eq!(&b[..12], &[0xFF; 12]);
        assert_eq!(&b[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn inc32_simple() {
        let mut b = [0u8; 16];
        inc32(&mut b);
        assert_eq!(b[15], 1);
        inc32(&mut b);
        assert_eq!(b[15], 2);
    }

    #[test]
    fn gctr_is_an_involution() {
        let aes = Aes128::new(&[0x42; 16]);
        let icb = [0x07; 16];
        for len in [0usize, 1, 16, 63, 64, 65, 250] {
            let original: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let mut data = original.clone();
            gctr_xor(&aes, &icb, &mut data);
            if len > 0 {
                assert_ne!(data, original);
            }
            gctr_xor(&aes, &icb, &mut data);
            assert_eq!(data, original);
        }
    }

    #[test]
    fn gctr_fast_path_matches_block_at_a_time() {
        let aes = Aes128::new(&[0x42; 16]);
        let icb = [0x01; 16];
        let len = 200;
        let mut fast: Vec<u8> = (0..len).map(|i| (i * 3 % 256) as u8).collect();
        let mut slow = fast.clone();
        gctr_xor(&aes, &icb, &mut fast);

        // Reference: strictly one block at a time.
        let mut counter = icb;
        for chunk in slow.chunks_mut(16) {
            let mut ks = counter;
            aes.encrypt_block(&mut ks);
            inc32(&mut counter);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
        assert_eq!(fast, slow);
    }
}
