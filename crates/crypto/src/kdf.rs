//! Per-session key derivation for the multi-tenant service.
//!
//! A deployed encrypted-collective service holds one long-lived *master*
//! key and must hand every admitted session its own AEAD key: sessions of
//! different tenants must not share key material, and a compromised
//! session key must not expose past or future sessions. This module
//! derives those keys with a CBC-MAC-style PRF over the AES block cipher
//! already in the crate — no new primitives, no new dependencies.
//!
//! The derivation input is a fixed-length two-block message:
//!
//! ```text
//! block0 = tenant_id (8 B, LE) ‖ session_id (8 B, LE)
//! block1 = epoch     (8 B, LE) ‖ b"EAGSESS\x01" (domain separator)
//! K_session = E_master(E_master(block0) ⊕ block1)
//! ```
//!
//! CBC-MAC is a secure PRF for *fixed-length* inputs (Bellare–Kilian–
//! Rogaway), which this is: exactly two blocks, always. The trailing
//! domain constant separates this use of the master key from any other
//! fixed-length CBC-MAC the service might run.
//!
//! *Rotation epochs:* the `epoch` word folds key rotation into the same
//! derivation — bumping the service's epoch re-keys every subsequently
//! admitted session without touching the master key. Live sessions keep
//! the key they were admitted under; rotation is forward-acting.

use crate::aes::Aes;
use crate::Key;

/// Domain-separation constant occupying the second half of block 1.
const DOMAIN: [u8; 8] = *b"EAGSESS\x01";

/// Derives per-session AEAD keys from a service master key.
///
/// Cheap to construct (one AES key schedule) and cheap per derivation
/// (two block encryptions); the service keeps one keychain per master-key
/// generation and calls [`SessionKeychain::derive`] on every admission.
///
/// ```
/// use eag_crypto::{Key, SessionKeychain};
///
/// let chain = SessionKeychain::new(&Key::from_bytes([7u8; 16]));
/// let k1 = chain.derive(1, 42, 0);
/// let k2 = chain.derive(1, 43, 0);
/// assert_ne!(k1.as_bytes(), k2.as_bytes()); // distinct sessions
/// assert_eq!(
///     k1.as_bytes(),
///     chain.derive(1, 42, 0).as_bytes() // deterministic
/// );
/// ```
pub struct SessionKeychain {
    prf: Aes,
}

impl SessionKeychain {
    /// A keychain over `master`. The master key itself is never handed to
    /// a session; only derived keys leave this type.
    pub fn new(master: &Key) -> Self {
        SessionKeychain {
            prf: Aes::new(master.as_bytes()),
        }
    }

    /// The AEAD key for `(tenant, session)` under rotation epoch `epoch`.
    ///
    /// Deterministic — the same triple always yields the same key — and
    /// injective-in-practice: any change to tenant, session, or epoch
    /// yields an unrelated key (PRF security of two-block CBC-MAC).
    pub fn derive(&self, tenant: u64, session: u64, epoch: u64) -> Key {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&tenant.to_le_bytes());
        block[8..].copy_from_slice(&session.to_le_bytes());
        self.prf.encrypt_block(&mut block);
        for (b, e) in block[..8].iter_mut().zip(epoch.to_le_bytes()) {
            *b ^= e;
        }
        for (b, d) in block[8..].iter_mut().zip(DOMAIN) {
            *b ^= d;
        }
        self.prf.encrypt_block(&mut block);
        Key::from_bytes(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SessionKeychain {
        SessionKeychain::new(&Key::from_bytes(*b"master-key-16byt"))
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = chain().derive(3, 17, 2);
        let b = chain().derive(3, 17, 2);
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn coordinates_separate_keys() {
        let c = chain();
        let base = c.derive(1, 1, 1);
        for (t, s, e) in [(2, 1, 1), (1, 2, 1), (1, 1, 2)] {
            assert_ne!(
                c.derive(t, s, e).as_bytes(),
                base.as_bytes(),
                "({t},{s},{e}) must not collide with (1,1,1)"
            );
        }
    }

    #[test]
    fn derived_key_differs_from_master() {
        let master = Key::from_bytes(*b"master-key-16byt");
        let derived = SessionKeychain::new(&master).derive(0, 0, 0);
        assert_ne!(derived.as_bytes(), master.as_bytes());
    }

    #[test]
    fn distinct_masters_give_distinct_chains() {
        let a = SessionKeychain::new(&Key::from_bytes([1u8; 16])).derive(9, 9, 9);
        let b = SessionKeychain::new(&Key::from_bytes([2u8; 16])).derive(9, 9, 9);
        assert_ne!(a.as_bytes(), b.as_bytes());
    }

    /// Pin the construction: independently recompute the two-block
    /// CBC-MAC with raw AES calls.
    #[test]
    fn matches_manual_cbc_mac() {
        let master = Key::from_bytes([0xAB; 16]);
        let derived = SessionKeychain::new(&master).derive(5, 6, 7);

        let aes = Aes::new(master.as_bytes());
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&5u64.to_le_bytes());
        block[8..].copy_from_slice(&6u64.to_le_bytes());
        aes.encrypt_block(&mut block);
        let mut second = [0u8; 16];
        second[..8].copy_from_slice(&7u64.to_le_bytes());
        second[8..].copy_from_slice(&DOMAIN);
        for (b, s) in block.iter_mut().zip(second) {
            *b ^= s;
        }
        aes.encrypt_block(&mut block);
        assert_eq!(derived.as_bytes(), &block);
    }
}
