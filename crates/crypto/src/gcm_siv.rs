//! AES-GCM-SIV authenticated encryption (RFC 8452).
//!
//! The nonce-misuse-resistant cipher suite. GCM fails catastrophically on a
//! repeated nonce (keystream reuse *and* authentication-key recovery);
//! GCM-SIV's synthetic IV construction caps the damage at revealing whether
//! two messages were identical. The price is two passes over the plaintext
//! (hash then encrypt — the tag must be derived from the plaintext before
//! the counter stream can start) plus a per-nonce AES key schedule, so seal
//! throughput trades against the misuse guarantee. Sessions whose nonces
//! come from entropy-starved or replayed environments should prefer it.
//!
//! Construction (for the AES-128 variant used here):
//! 1. derive per-nonce keys: `auth ‖ enc` from AES-ECB of `le32(i) ‖ nonce`
//!    for i = 0..3 (first 8 bytes of each block);
//! 2. `S = POLYVAL(auth, aad_padded ‖ pt_padded ‖ le64-length-block)`,
//!    XOR the nonce into `S[0..12]`, clear the top bit of `S[15]`;
//! 3. `tag = AES_enc(S)`; the CTR stream starts at `tag` with the top bit of
//!    byte 15 **set**, counting little-endian in bytes 0..4.
//!
//! POLYVAL rides the existing PCLMUL/soft GHASH kernels bit-reflected
//! (see [`crate::polyval`]); AES dispatches per [`crate::aes`].

use crate::aes::{Aes, Backend};
use crate::gcm::{OpenError, TAG_LEN};
use crate::nonce::{Nonce, NONCE_LEN};
use crate::polyval::Polyval;
use crate::Key;

/// Maximum plaintext (and AAD) length RFC 8452 permits: 2^36 bytes.
pub const MAX_PLAINTEXT_LEN_SIV: usize = 1 << 36;

/// An AES-128-GCM-SIV AEAD instance holding the key-generating key.
#[derive(Clone)]
pub struct AesGcmSiv {
    /// The key-generating key; per-message keys derive from it and the nonce.
    kgk: Aes,
    /// Pin POLYVAL (not just AES) to the portable path when forced soft.
    soft: bool,
}

impl AesGcmSiv {
    /// Creates an AES-128-GCM-SIV instance from a 128-bit [`Key`],
    /// selecting the fastest available AES and POLYVAL backends.
    pub fn new(key: &Key) -> Self {
        let kgk = Aes::new(key.as_bytes());
        let soft = kgk.backend() != Backend::AesNi;
        AesGcmSiv { kgk, soft }
    }

    /// Creates an instance pinned to the portable backends (for cross-checks
    /// and forced-soft dispatch).
    pub fn new_soft(key: &Key) -> Self {
        AesGcmSiv {
            kgk: Aes::new_soft(key.as_bytes()),
            soft: true,
        }
    }

    /// Whether this instance runs on the portable (non-SIMD) backends.
    pub fn is_soft(&self) -> bool {
        self.soft
    }

    /// An AES instance over a derived key, on the same backend as the
    /// key-generating key (so forced-soft stays soft).
    fn msg_aes(&self, key: &[u8; 16]) -> Aes {
        match self.kgk.backend() {
            Backend::Soft => Aes::new_soft(key),
            Backend::SoftConstantTime => Aes::new_constant_time(key),
            Backend::AesNi => Aes::new(key),
        }
    }

    /// RFC 8452 §4 key derivation: message-authentication and
    /// message-encryption keys from AES-ECB over `le32(i) ‖ nonce`.
    fn derive_keys(&self, nonce: &Nonce) -> ([u8; 16], [u8; 16]) {
        let mut blocks = [0u8; 64];
        for i in 0..4u32 {
            let base = 16 * i as usize;
            blocks[base..base + 4].copy_from_slice(&i.to_le_bytes());
            blocks[base + 4..base + 16].copy_from_slice(nonce.as_bytes());
        }
        self.kgk.encrypt_blocks4(&mut blocks);
        let mut auth = [0u8; 16];
        auth[..8].copy_from_slice(&blocks[0..8]);
        auth[8..].copy_from_slice(&blocks[16..24]);
        let mut enc = [0u8; 16];
        enc[..8].copy_from_slice(&blocks[32..40]);
        enc[8..].copy_from_slice(&blocks[48..56]);
        (auth, enc)
    }

    /// The synthetic IV: POLYVAL over padded AAD, padded plaintext, and the
    /// little-endian bit-length block, nonce-XORed and top-bit-cleared.
    fn synthetic_iv(&self, auth_key: &[u8; 16], nonce: &Nonce, aad: &[u8], pt: &[u8]) -> [u8; 16] {
        let mut pv = if self.soft {
            Polyval::new_soft(auth_key)
        } else {
            Polyval::new(auth_key)
        };
        pv.update_padded(aad);
        pv.update_padded(pt);
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&((aad.len() as u64) * 8).to_le_bytes());
        lens[8..].copy_from_slice(&((pt.len() as u64) * 8).to_le_bytes());
        pv.update_block(&lens);
        let mut s = pv.finalize();
        for (si, ni) in s[..NONCE_LEN].iter_mut().zip(nonce.as_bytes()) {
            *si ^= ni;
        }
        s[15] &= 0x7f;
        s
    }

    /// Encrypts `data` in place and returns the 16-byte tag.
    /// Panics if `data` exceeds [`MAX_PLAINTEXT_LEN_SIV`].
    pub fn seal_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        assert!(
            data.len() <= MAX_PLAINTEXT_LEN_SIV,
            "GCM-SIV plaintext exceeds the RFC 8452 length limit"
        );
        let (auth_key, enc_key) = self.derive_keys(nonce);
        let enc = self.msg_aes(&enc_key);
        let mut tag = self.synthetic_iv(&auth_key, nonce, aad, data);
        enc.encrypt_block(&mut tag);
        let mut ctr = tag;
        ctr[15] |= 0x80;
        le_ctr_xor(&enc, &ctr, data);
        tag
    }

    /// Verifies `tag` and decrypts `data` (ciphertext) in place.
    ///
    /// SIV tags are functions of the *plaintext*, so decryption must happen
    /// before the tag can be recomputed; on mismatch the buffer is zeroed
    /// (unauthenticated plaintext must not escape) and
    /// [`OpenError::TagMismatch`] is returned.
    pub fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        if tag.len() != TAG_LEN || data.len() > MAX_PLAINTEXT_LEN_SIV {
            return Err(OpenError::Truncated);
        }
        let (auth_key, enc_key) = self.derive_keys(nonce);
        let enc = self.msg_aes(&enc_key);
        let mut ctr = [0u8; 16];
        ctr.copy_from_slice(tag);
        ctr[15] |= 0x80;
        le_ctr_xor(&enc, &ctr, data);

        let mut expect = self.synthetic_iv(&auth_key, nonce, aad, data);
        enc.encrypt_block(&mut expect);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            data.fill(0);
            return Err(OpenError::TagMismatch);
        }
        Ok(())
    }

    /// Encrypts and authenticates: returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_in_place_detached(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag`; returns the plaintext.
    pub fn open(&self, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, OpenError> {
        if sealed.len() < TAG_LEN {
            return Err(OpenError::Truncated);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut pt = ct.to_vec();
        self.open_in_place_detached(nonce, aad, &mut pt, tag)?;
        Ok(pt)
    }
}

/// XORs `data` with an AES-CTR keystream in GCM-SIV's counter layout:
/// a **little-endian** 32-bit counter in bytes 0..4 of the block (wrapping
/// mod 2^32), the rest of the block fixed. Four blocks are generated per
/// AES call so the AES-NI path stays pipelined.
fn le_ctr_xor(aes: &Aes, block: &[u8; 16], data: &mut [u8]) {
    let mut ctr = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
    for chunk in data.chunks_mut(64) {
        let mut ks = [0u8; 64];
        for i in 0..4 {
            let base = 16 * i;
            ks[base..base + 16].copy_from_slice(block);
            ks[base..base + 4].copy_from_slice(&ctr.wrapping_add(i as u32).to_le_bytes());
        }
        aes.encrypt_blocks4(&mut ks);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
        ctr = ctr.wrapping_add(chunk.len().div_ceil(16) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> Key {
        let mut k = [0u8; 16];
        k.copy_from_slice(&hex("01000000000000000000000000000000"));
        Key::from_bytes(k)
    }

    fn rfc_nonce() -> Nonce {
        let mut n = [0u8; 12];
        n.copy_from_slice(&hex("030000000000000000000000"));
        Nonce::from_bytes(n)
    }

    /// RFC 8452 Appendix C.1, first vectors (AES-128, empty AAD), checked on
    /// both the detected and the forced-soft backends.
    #[test]
    fn rfc8452_known_answers() {
        struct Kat {
            pt: &'static str,
            ct_and_tag: &'static str,
        }
        let kats = [
            Kat {
                pt: "",
                ct_and_tag: "dc20e2d83f25705bb49e439eca56de25",
            },
            Kat {
                pt: "0100000000000000",
                ct_and_tag: "b5d839330ac7b786578782fff6013b815b287c22493a364c",
            },
            Kat {
                pt: "010000000000000000000000",
                ct_and_tag: "7323ea61d05932260047d942a4978db357391a0bc4fdec8b0d106639",
            },
            Kat {
                pt: "01000000000000000000000000000000",
                ct_and_tag: "743f7c8077ab25f8624e2e948579cf77303aaf90f6fe21199c6068577437a0c4",
            },
        ];
        for cipher in [AesGcmSiv::new(&rfc_key()), AesGcmSiv::new_soft(&rfc_key())] {
            for (i, kat) in kats.iter().enumerate() {
                let pt = hex(kat.pt);
                let sealed = cipher.seal(&rfc_nonce(), b"", &pt);
                assert_eq!(sealed, hex(kat.ct_and_tag), "kat {i}");
                assert_eq!(cipher.open(&rfc_nonce(), b"", &sealed).unwrap(), pt);
            }
        }
    }

    #[test]
    fn roundtrip_across_sizes_and_backends() {
        let key = Key::from_bytes([0x5Cu8; 16]);
        let fast = AesGcmSiv::new(&key);
        let soft = AesGcmSiv::new_soft(&key);
        let nonce = Nonce::from_bytes([3u8; 12]);
        for len in [0usize, 1, 15, 16, 17, 64, 65, 129, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 29 % 251) as u8).collect();
            let sealed = fast.seal(&nonce, b"hdr", &pt);
            assert_eq!(sealed, soft.seal(&nonce, b"hdr", &pt), "len = {len}");
            assert_eq!(fast.open(&nonce, b"hdr", &sealed).unwrap(), pt);
            assert_eq!(soft.open(&nonce, b"hdr", &sealed).unwrap(), pt);
            assert!(fast.open(&nonce, b"bad", &sealed).is_err());
        }
    }

    #[test]
    fn tampered_frames_rejected_and_zeroized() {
        let cipher = AesGcmSiv::new(&Key::from_bytes([0x11u8; 16]));
        let nonce = Nonce::from_bytes([8u8; 12]);
        let mut sealed = cipher.seal(&nonce, b"aad", b"attack at dawn");
        for i in 0..sealed.len() {
            sealed[i] ^= 0x20;
            assert_eq!(
                cipher.open(&nonce, b"aad", &sealed),
                Err(OpenError::TagMismatch),
                "flip at byte {i}"
            );
            sealed[i] ^= 0x20;
        }
        // In-place open zeroizes on mismatch.
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut buf = ct.to_vec();
        let mut bad_tag = [0u8; TAG_LEN];
        bad_tag.copy_from_slice(tag);
        bad_tag[5] ^= 0x80;
        assert!(cipher
            .open_in_place_detached(&nonce, b"aad", &mut buf, &bad_tag)
            .is_err());
        assert!(buf.iter().all(|&b| b == 0));
    }

    /// Nonce misuse: same (key, nonce, aad, plaintext) → same frame
    /// (deterministic), but any plaintext difference re-randomizes the whole
    /// ciphertext (the SIV property — no keystream-prefix reuse).
    #[test]
    fn nonce_reuse_is_deterministic_not_catastrophic() {
        let cipher = AesGcmSiv::new(&Key::from_bytes([0x77u8; 16]));
        let nonce = Nonce::from_bytes([1u8; 12]);
        let a = cipher.seal(&nonce, b"", b"identical message");
        let b = cipher.seal(&nonce, b"", b"identical message");
        assert_eq!(a, b);
        let c = cipher.seal(&nonce, b"", b"identical messagf");
        // Under GCM, two same-nonce seals share a keystream prefix, so the
        // XOR of the ciphertexts would equal the XOR of the plaintexts for
        // the common prefix. Under SIV the tags differ, the counters differ,
        // and the shared-prefix relation must not hold.
        let shared_prefix = a
            .iter()
            .zip(c.iter())
            .take(16)
            .filter(|(x, y)| x == y)
            .count();
        assert!(
            shared_prefix < 16,
            "ciphertexts must diverge from the first block"
        );
    }
}
