//! Nonce handling for GCM.
//!
//! GCM is nonce-based: a 96-bit public value that must never repeat under one
//! key. Following the paper (Section III), nonces are drawn at random, which
//! is standard-compliant; a deterministic seeded source exists for tests.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Nonce length in bytes (96-bit IVs, the GCM fast path).
pub const NONCE_LEN: usize = 12;

/// A 96-bit GCM nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nonce([u8; NONCE_LEN]);

impl Nonce {
    /// Wraps raw nonce bytes.
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce(bytes)
    }

    /// The raw nonce bytes.
    pub fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.0
    }
}

/// A stream of random nonces.
///
/// Each process owns one source; sources are seeded independently so that
/// concurrent processes never share an RNG (and, with overwhelming
/// probability, never repeat a 96-bit value).
pub struct NonceSource {
    rng: StdRng,
    issued: u64,
}

impl NonceSource {
    /// A source seeded from the operating system.
    pub fn from_entropy() -> Self {
        NonceSource {
            rng: StdRng::from_rng(&mut rand::rng()),
            issued: 0,
        }
    }

    /// A deterministic source for tests and reproducible simulation runs.
    pub fn seeded(seed: u64) -> Self {
        NonceSource {
            rng: StdRng::seed_from_u64(seed),
            issued: 0,
        }
    }

    /// Draws the next nonce.
    pub fn next_nonce(&mut self) -> Nonce {
        let mut n = [0u8; NONCE_LEN];
        self.rng.fill_bytes(&mut n);
        self.issued += 1;
        Nonce(n)
    }

    /// Number of nonces issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeded_source_is_deterministic() {
        let mut a = NonceSource::seeded(7);
        let mut b = NonceSource::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_nonce(), b.next_nonce());
        }
        assert_eq!(a.issued(), 100);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NonceSource::seeded(1);
        let mut b = NonceSource::seeded(2);
        assert_ne!(a.next_nonce(), b.next_nonce());
    }

    #[test]
    fn no_repeats_in_many_draws() {
        let mut src = NonceSource::seeded(99);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(*src.next_nonce().as_bytes()));
        }
    }
}
