//! GHASH — the universal hash over GF(2^128) used by GCM (NIST SP 800-38D §6.4).
//!
//! Three multiplication backends:
//! - a portable bitwise reference implementation (`gf128_mul_soft`);
//! - a portable byte-serial table-driven implementation (Shoup's method);
//! - a PCLMULQDQ carry-less-multiply fast path on x86-64 with 4-block
//!   aggregation over precomputed powers of H.
//!
//! Field elements use GCM's reflected bit order: bit 0 of a block is the most
//! significant bit of its first byte. Blocks are converted to `u128` with
//! big-endian loads, which makes "bit 0" the `u128` MSB and the reduction
//! polynomial `R = 0xE1 << 120`.

/// The GCM reduction constant: x^128 = x^7 + x^2 + x + 1 in reflected form.
const R: u128 = 0xE1u128 << 120;

/// Multiplies two GF(2^128) elements (reference, portable).
pub fn gf128_mul_soft(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Which multiplication backend a [`GHash`] instance dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulBackend {
    /// Portable bitwise implementation (the reference; 128 steps/block).
    Soft,
    /// Portable byte-serial implementation with a per-key 4 KiB table
    /// (Shoup's method): ~8× faster than bitwise, no special instructions.
    SoftTable,
    /// x86-64 PCLMULQDQ carry-less multiply.
    Pclmul,
}

/// Multiplication of the low-byte field element by x^8 — the per-byte
/// Horner step of the table-driven path. Key-independent, built once.
fn x8_reduce_table() -> &'static [u128; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u128; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        // The element x^8 has coefficient bit 127-8 set.
        let x8 = 1u128 << 119;
        let mut t = [0u128; 256];
        for (v, slot) in t.iter_mut().enumerate() {
            *slot = gf128_mul_soft(v as u128, x8);
        }
        t
    })
}

/// Per-key byte table: `T[b] = (b as the degree-0..7 element) · H`.
fn byte_table(h: u128) -> std::sync::Arc<[u128; 256]> {
    let mut t = [0u128; 256];
    for (b, slot) in t.iter_mut().enumerate() {
        // Byte b in block-byte-0 position = most significant byte of the
        // big-endian u128.
        *slot = gf128_mul_soft((b as u128) << 120, h);
    }
    std::sync::Arc::new(t)
}

/// Precomputes H¹..H⁴ (key setup; the portable multiply is fine here).
fn h_powers(h: u128) -> [u128; 4] {
    let h2 = gf128_mul_soft(h, h);
    let h3 = gf128_mul_soft(h2, h);
    let h4 = gf128_mul_soft(h3, h);
    [h, h2, h3, h4]
}

/// Byte-serial multiply-by-H using the per-key table (Horner over the 16
/// bytes of `x`, degree-descending).
fn mul_h_table(table: &[u128; 256], x: u128) -> u128 {
    let reduce = x8_reduce_table();
    let bytes = x.to_be_bytes();
    let mut z = 0u128;
    for &b in bytes.iter().rev() {
        // z := z·x^8 + T[b]
        z = (z >> 8) ^ reduce[(z & 0xFF) as usize] ^ table[b as usize];
    }
    z
}

/// Multiplies a GHASH field element by x (one step of the reduction walk).
/// This is `mulX_GHASH` from RFC 8452 Appendix A, used to translate a
/// POLYVAL key into the GHASH representation.
pub(crate) fn mulx_ghash(v: u128) -> u128 {
    let lsb = v & 1;
    let mut v = v >> 1;
    if lsb == 1 {
        v ^= R;
    }
    v
}

fn detect_backend() -> MulBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if !crate::dispatch::force_soft()
            && std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse2")
            && std::arch::is_x86_feature_detected!("ssse3")
        {
            return MulBackend::Pclmul;
        }
    }
    MulBackend::Soft
}

/// Incremental GHASH state keyed by `H = E_K(0^128)`.
///
/// Cloning is allocation-free (the per-key table is shared), so a long-lived
/// instance can serve as a per-key prototype: build once with [`GHash::new`],
/// then stamp out fresh accumulators with [`GHash::fresh`] on every message.
#[derive(Clone)]
pub struct GHash {
    h: u128,
    acc: u128,
    backend: MulBackend,
    /// Per-key byte table (SoftTable backend only), shared across clones.
    table: Option<std::sync::Arc<[u128; 256]>>,
    /// H¹..H⁴ for aggregated multiplies (Pclmul backend only; zeroed
    /// otherwise to keep portable key setup cheap).
    powers: [u128; 4],
}

impl GHash {
    /// Creates a GHASH instance for hash subkey `h` (16 bytes, wire order),
    /// selecting the fastest available backend (PCLMULQDQ, else the
    /// table-driven portable path).
    pub fn new(h: &[u8; 16]) -> Self {
        let hv = u128::from_be_bytes(*h);
        match detect_backend() {
            MulBackend::Pclmul => GHash {
                h: hv,
                acc: 0,
                backend: MulBackend::Pclmul,
                table: None,
                powers: h_powers(hv),
            },
            _ => GHash {
                h: hv,
                acc: 0,
                backend: MulBackend::SoftTable,
                table: Some(byte_table(hv)),
                powers: [0; 4],
            },
        }
    }

    /// Creates an instance pinned to the portable bitwise reference
    /// (for cross-checks).
    pub fn new_soft(h: &[u8; 16]) -> Self {
        GHash {
            h: u128::from_be_bytes(*h),
            acc: 0,
            backend: MulBackend::Soft,
            table: None,
            powers: [0; 4],
        }
    }

    /// Creates an instance pinned to the table-driven portable backend.
    pub fn new_soft_table(h: &[u8; 16]) -> Self {
        let hv = u128::from_be_bytes(*h);
        GHash {
            h: hv,
            acc: 0,
            backend: MulBackend::SoftTable,
            table: Some(byte_table(hv)),
            powers: [0; 4],
        }
    }

    /// A fresh accumulator sharing this instance's key material. No
    /// allocation: the byte table (if any) is reference-counted.
    pub fn fresh(&self) -> GHash {
        let mut g = self.clone();
        g.acc = 0;
        g
    }

    /// The multiplication backend in use.
    pub fn backend(&self) -> MulBackend {
        self.backend
    }

    /// The raw accumulator (for the fused CTR+GHASH kernel).
    #[inline]
    pub(crate) fn acc_raw(&self) -> u128 {
        self.acc
    }

    /// Overwrites the raw accumulator (for the fused CTR+GHASH kernel).
    #[inline]
    pub(crate) fn set_acc_raw(&mut self, acc: u128) {
        self.acc = acc;
    }

    /// Precomputed H¹..H⁴ (Pclmul backend only).
    #[inline]
    pub(crate) fn powers(&self) -> &[u128; 4] {
        &self.powers
    }

    #[inline]
    fn mul_h(&self, x: u128) -> u128 {
        match self.backend {
            MulBackend::Soft => gf128_mul_soft(x, self.h),
            MulBackend::SoftTable => {
                mul_h_table(self.table.as_deref().expect("table built at init"), x)
            }
            MulBackend::Pclmul => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: backend is Pclmul only when the CPU reports
                // pclmulqdq + sse2 + ssse3 support.
                unsafe {
                    pclmul::gf128_mul(x, self.h)
                }
                #[cfg(not(target_arch = "x86_64"))]
                gf128_mul_soft(x, self.h)
            }
        }
    }

    /// Absorbs one full 16-byte block.
    #[inline]
    pub fn update_block(&mut self, block: &[u8; 16]) {
        self.acc = self.mul_h(self.acc ^ u128::from_be_bytes(*block));
    }

    /// Absorbs `data`, zero-padding the final partial block (GHASH padding).
    pub fn update_padded(&mut self, data: &[u8]) {
        let full = data.len() - data.len() % 16;
        // Bulk path: keep the accumulator in an SSE register across blocks.
        #[cfg(target_arch = "x86_64")]
        if self.backend == MulBackend::Pclmul && full > 0 {
            // SAFETY: backend is Pclmul only when pclmulqdq+sse2+ssse3 are
            // reported by the CPU.
            self.acc = unsafe { pclmul::ghash_blocks(self.acc, &self.powers, &data[..full]) };
        } else {
            self.update_full_blocks_soft(&data[..full]);
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.update_full_blocks_soft(&data[..full]);

        let rem = &data[full..];
        if !rem.is_empty() {
            let mut b = [0u8; 16];
            b[..rem.len()].copy_from_slice(rem);
            self.update_block(&b);
        }
    }

    fn update_full_blocks_soft(&mut self, data: &[u8]) {
        for chunk in data.chunks_exact(16) {
            let mut b = [0u8; 16];
            b.copy_from_slice(chunk);
            self.update_block(&b);
        }
    }

    /// Absorbs the GCM length block: `[len(A)]64 || [len(C)]64` in bits.
    pub fn update_lengths(&mut self, aad_bytes: u64, ct_bytes: u64) {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&(aad_bytes * 8).to_be_bytes());
        b[8..].copy_from_slice(&(ct_bytes * 8).to_be_bytes());
        self.update_block(&b);
    }

    /// Returns the current accumulator as a 16-byte block.
    pub fn finalize(&self) -> [u8; 16] {
        self.acc.to_be_bytes()
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod pclmul {
    use std::arch::x86_64::*;

    /// Loads a GCM field element (given as a big-endian `u128`, the same
    /// convention as the portable code) into an SSE register in *reflected*
    /// layout: byte 0 of the block in lane 15. In this layout the classic
    /// Intel "GCM with bit-reflected data" multiply below applies directly.
    #[inline(always)]
    pub(crate) unsafe fn load_elem(x: u128) -> __m128i {
        // to_be_bytes puts block byte 0 first; loading little-endian and
        // byte-reversing gives lane15 = block byte 0.
        let bytes = x.to_be_bytes();
        let v = _mm_loadu_si128(bytes.as_ptr() as *const __m128i);
        bswap(v)
    }

    #[inline(always)]
    pub(crate) unsafe fn store_elem(v: __m128i) -> u128 {
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, bswap(v));
        u128::from_be_bytes(out)
    }

    /// Byte-reverses the 16 lanes.
    #[inline(always)]
    pub(crate) unsafe fn bswap(v: __m128i) -> __m128i {
        let mask = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        _mm_shuffle_epi8(v, mask)
    }

    /// Raw 256-bit carry-less product of two 128-bit operands
    /// (Karatsuba-free schoolbook: 4 PCLMULQDQs), returned as (lo, hi).
    #[inline(always)]
    pub(crate) unsafe fn clmul256(a: __m128i, b: __m128i) -> (__m128i, __m128i) {
        let mut lo = _mm_clmulepi64_si128(a, b, 0x00);
        let mut mid = _mm_clmulepi64_si128(a, b, 0x10);
        let mid2 = _mm_clmulepi64_si128(a, b, 0x01);
        let mut hi = _mm_clmulepi64_si128(a, b, 0x11);
        mid = _mm_xor_si128(mid, mid2);
        lo = _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
        hi = _mm_xor_si128(hi, _mm_srli_si128(mid, 8));
        (lo, hi)
    }

    /// Finishes a (possibly aggregated) 256-bit product of bit-reflected
    /// operands — the well-known sequence from Intel's GCM white paper:
    /// shift left by one (reflection fixup), then reduce modulo
    /// x^128 + x^7 + x^2 + x + 1. Both steps are linear, so products may be
    /// XOR-summed before a single call.
    #[inline(always)]
    pub(crate) unsafe fn shift_reduce(mut tmp3: __m128i, mut tmp6: __m128i) -> __m128i {
        // Shift the 256-bit product left by 1 bit.
        let tmp7 = _mm_srli_epi32(tmp3, 31);
        let tmp8 = _mm_srli_epi32(tmp6, 31);
        tmp3 = _mm_slli_epi32(tmp3, 1);
        tmp6 = _mm_slli_epi32(tmp6, 1);
        let tmp9 = _mm_srli_si128(tmp7, 12);
        let tmp8s = _mm_slli_si128(tmp8, 4);
        let tmp7s = _mm_slli_si128(tmp7, 4);
        tmp3 = _mm_or_si128(tmp3, tmp7s);
        tmp6 = _mm_or_si128(tmp6, tmp8s);
        tmp6 = _mm_or_si128(tmp6, tmp9);

        // Reduction.
        let tmp7r = _mm_slli_epi32(tmp3, 31);
        let tmp8r = _mm_slli_epi32(tmp3, 30);
        let tmp9r = _mm_slli_epi32(tmp3, 25);
        let mut tmp7x = _mm_xor_si128(tmp7r, tmp8r);
        tmp7x = _mm_xor_si128(tmp7x, tmp9r);
        let tmp8x = _mm_srli_si128(tmp7x, 4);
        let tmp7y = _mm_slli_si128(tmp7x, 12);
        tmp3 = _mm_xor_si128(tmp3, tmp7y);

        let mut tmp2 = _mm_srli_epi32(tmp3, 1);
        let tmp4r = _mm_srli_epi32(tmp3, 2);
        let tmp5r = _mm_srli_epi32(tmp3, 7);
        tmp2 = _mm_xor_si128(tmp2, tmp4r);
        tmp2 = _mm_xor_si128(tmp2, tmp5r);
        tmp2 = _mm_xor_si128(tmp2, tmp8x);
        tmp3 = _mm_xor_si128(tmp3, tmp2);
        _mm_xor_si128(tmp6, tmp3)
    }

    /// One GF(2^128) multiply of bit-reflected operands.
    #[inline(always)]
    pub(crate) unsafe fn mul_reflected(a: __m128i, b: __m128i) -> __m128i {
        let (lo, hi) = clmul256(a, b);
        shift_reduce(lo, hi)
    }

    /// GF(2^128) multiply in GCM's representation (big-endian `u128`s, as
    /// in [`super::gf128_mul_soft`]).
    #[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "ssse3")]
    pub unsafe fn gf128_mul(x: u128, y: u128) -> u128 {
        let a = load_elem(x);
        let b = load_elem(y);
        store_elem(mul_reflected(a, b))
    }

    /// Aggregates four bit-reflected blocks into the accumulator with one
    /// reduction: `acc' = (acc^B0)·H⁴ ⊕ B1·H³ ⊕ B2·H² ⊕ B3·H`.
    #[inline(always)]
    pub(crate) unsafe fn ghash4(
        a: __m128i,
        b: [__m128i; 4],
        h1: __m128i,
        h2: __m128i,
        h3: __m128i,
        h4: __m128i,
    ) -> __m128i {
        let (mut lo, mut hi) = clmul256(_mm_xor_si128(a, b[0]), h4);
        let (l1, h1p) = clmul256(b[1], h3);
        let (l2, h2p) = clmul256(b[2], h2);
        let (l3, h3p) = clmul256(b[3], h1);
        lo = _mm_xor_si128(_mm_xor_si128(lo, l1), _mm_xor_si128(l2, l3));
        hi = _mm_xor_si128(_mm_xor_si128(hi, h1p), _mm_xor_si128(h2p, h3p));
        shift_reduce(lo, hi)
    }

    /// Absorbs full 16-byte blocks, keeping the accumulator in a register
    /// throughout. Four blocks are aggregated per reduction using the
    /// precomputed `powers` H¹..H⁴ (see [`ghash4`]).
    #[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "ssse3")]
    pub unsafe fn ghash_blocks(acc: u128, powers: &[u128; 4], data: &[u8]) -> u128 {
        debug_assert_eq!(data.len() % 16, 0);
        let h1 = load_elem(powers[0]);
        let h2 = load_elem(powers[1]);
        let h3 = load_elem(powers[2]);
        let h4 = load_elem(powers[3]);
        let mut a = load_elem(acc);

        let mut chunks = data.chunks_exact(64);
        for quad in &mut chunks {
            let p = quad.as_ptr() as *const __m128i;
            let b = [
                bswap(_mm_loadu_si128(p)),
                bswap(_mm_loadu_si128(p.add(1))),
                bswap(_mm_loadu_si128(p.add(2))),
                bswap(_mm_loadu_si128(p.add(3))),
            ];
            a = ghash4(a, b, h1, h2, h3, h4);
        }
        for chunk in chunks.remainder().chunks_exact(16) {
            let block = bswap(_mm_loadu_si128(chunk.as_ptr() as *const __m128i));
            a = mul_reflected(_mm_xor_si128(a, block), h1);
        }
        store_elem(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test case 2 of the GCM spec (McGrew & Viega): H and a single
    /// ciphertext block with known GHASH output.
    #[test]
    fn ghash_known_answer() {
        // AES-128 key 0^128: H = E_K(0) = 66e94bd4ef8a2c3b884cfa59ca342b2e.
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let c = hex16("0388dace60b6a392f328c2b971b2fe78");
        let mut g = GHash::new_soft(&h);
        g.update_block(&c);
        g.update_lengths(0, 16);
        // GHASH(H, {}, C) from the GCM test vectors.
        assert_eq!(g.finalize(), hex16("f38cbb1ad69223dcc3457ae5b6b0f885"));
    }

    #[test]
    fn mul_identity_and_zero() {
        // The multiplicative identity in GCM's representation is the block
        // 0x80 00...00 (bit 0 set), i.e. u128 MSB.
        let one = 1u128 << 127;
        for x in [0u128, 1, 0xdeadbeef, u128::MAX, one] {
            assert_eq!(gf128_mul_soft(x, one), x);
            assert_eq!(gf128_mul_soft(one, x), x);
            assert_eq!(gf128_mul_soft(x, 0), 0);
        }
    }

    #[test]
    fn mul_commutes() {
        let samples = [
            0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978u128,
            0xffff_0000_ffff_0000_1111_2222_3333_4444u128,
            1u128,
            u128::MAX,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(gf128_mul_soft(a, b), gf128_mul_soft(b, a));
            }
        }
    }

    #[test]
    fn pclmul_matches_soft_when_available() {
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let fast = GHash::new(&h);
        if fast.backend() != MulBackend::Pclmul {
            return; // nothing to cross-check on this CPU
        }
        let samples = [
            0u128,
            1,
            1u128 << 127,
            0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978,
            u128::MAX,
            0x8000_0000_0000_0000_0000_0000_0000_0001,
        ];
        let hval = u128::from_be_bytes(h);
        for &x in &samples {
            #[cfg(target_arch = "x86_64")]
            {
                let want = gf128_mul_soft(x, hval);
                // SAFETY: guarded above — the test returns early unless the
                // detected backend is Pclmul (CPU has pclmulqdq+sse2+ssse3).
                let got = unsafe { pclmul::gf128_mul(x, hval) };
                assert_eq!(got, want, "x = {x:032x}");
            }
        }
    }

    #[test]
    fn bulk_path_matches_soft_for_all_lengths() {
        // Exercises the 4-block aggregated path, its single-block tail, and
        // the padded remainder, against the portable reference.
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        for len in 0..=200usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut fast = GHash::new(&h);
            let mut soft = GHash::new_soft(&h);
            fast.update_padded(&data);
            soft.update_padded(&data);
            assert_eq!(fast.finalize(), soft.finalize(), "len = {len}");
        }
    }

    #[test]
    fn bulk_path_composes_with_prior_state() {
        // Absorbing in two calls must equal absorbing at once (full blocks).
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let data: Vec<u8> = (0..160).map(|i| (i * 7) as u8).collect();
        let mut split = GHash::new(&h);
        split.update_padded(&data[..64]);
        split.update_padded(&data[64..]);
        let mut whole = GHash::new(&h);
        whole.update_padded(&data);
        assert_eq!(split.finalize(), whole.finalize());
    }

    #[test]
    fn table_backend_matches_bitwise_reference() {
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        for len in [0usize, 5, 16, 33, 64, 129] {
            let data: Vec<u8> = (0..len).map(|i| (i * 131 + 7) as u8).collect();
            let mut table = GHash::new_soft_table(&h);
            let mut soft = GHash::new_soft(&h);
            table.update_padded(&data);
            soft.update_padded(&data);
            assert_eq!(table.finalize(), soft.finalize(), "len = {len}");
        }
    }

    #[test]
    fn table_mul_matches_bitwise_for_edge_elements() {
        let h = u128::from_be_bytes(hex16("66e94bd4ef8a2c3b884cfa59ca342b2e"));
        let table = byte_table(h);
        for x in [
            0u128,
            1,
            1u128 << 127,
            u128::MAX,
            0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978,
        ] {
            assert_eq!(mul_h_table(&table, x), gf128_mul_soft(x, h), "x = {x:032x}");
        }
    }

    #[test]
    fn update_padded_pads_with_zeros() {
        let h = hex16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let mut a = GHash::new_soft(&h);
        a.update_padded(&[0xAB; 5]);
        let mut b = GHash::new_soft(&h);
        let mut block = [0u8; 16];
        block[..5].copy_from_slice(&[0xAB; 5]);
        b.update_block(&block);
        assert_eq!(a.finalize(), b.finalize());
    }

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }
}
