//! The ChaCha20 stream cipher (RFC 8439 §2.1–2.4).
//!
//! ChaCha20 is the AEAD workhorse for hosts without AES-NI: its block
//! function is 16 32-bit words of add/rotate/xor, which runs at full speed
//! on plain integer ALUs. Two implementations live here:
//!
//! - a portable scalar implementation (the reference, used everywhere);
//! - an SSE2 single-block path on x86-64 that keeps the four state rows in
//!   xmm registers and diagonalizes with lane shuffles, behind runtime CPU
//!   feature detection.
//!
//! Both compute the same function; the dispatch policy (including the
//! `EAG_CRYPTO_FORCE_SOFT` override) is shared with the other primitives
//! via [`crate::dispatch`].

/// The ChaCha20 constants: `"expand 32-byte k"` as four LE words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Which implementation a [`ChaCha20`] instance dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaChaBackend {
    /// Portable scalar implementation (the reference).
    Soft,
    /// x86-64 SSE2 row-vector implementation.
    Sse2,
}

fn detect_backend() -> ChaChaBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if !crate::dispatch::force_soft() && std::arch::is_x86_feature_detected!("sse2") {
            return ChaChaBackend::Sse2;
        }
    }
    ChaChaBackend::Soft
}

/// A ChaCha20 instance with a 256-bit key.
///
/// Nonces are 96-bit and the block counter 32-bit (the RFC 8439 layout used
/// by ChaCha20-Poly1305).
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    backend: ChaChaBackend,
}

impl ChaCha20 {
    /// Creates an instance, selecting the fastest available backend.
    pub fn new(key: &[u8; 32]) -> Self {
        ChaCha20 {
            key: key_words(key),
            backend: detect_backend(),
        }
    }

    /// Forces the portable scalar backend (for tests and cross-checks).
    pub fn new_soft(key: &[u8; 32]) -> Self {
        ChaCha20 {
            key: key_words(key),
            backend: ChaChaBackend::Soft,
        }
    }

    /// The backend this instance dispatches to.
    pub fn backend(&self) -> ChaChaBackend {
        self.backend
    }

    /// The 64-byte keystream block at `counter`.
    pub fn block(&self, nonce: &[u8; 12], counter: u32) -> [u8; 64] {
        let mut out = [0u8; 64];
        match self.backend {
            ChaChaBackend::Soft => block_soft(&self.key, nonce, counter, &mut out),
            ChaChaBackend::Sse2 => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: backend is Sse2 only when the CPU reports SSE2.
                unsafe {
                    sse2::block(&self.key, nonce, counter, &mut out)
                }
                #[cfg(not(target_arch = "x86_64"))]
                block_soft(&self.key, nonce, counter, &mut out)
            }
        }
        out
    }

    /// XORs `data` with the keystream starting at block `counter`
    /// (incrementing per 64-byte block, wrapping mod 2^32).
    pub fn xor(&self, nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
        let mut ctr = counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(nonce, ctr);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }
}

fn key_words(key: &[u8; 32]) -> [u32; 8] {
    let mut w = [0u32; 8];
    for (i, slot) in w.iter_mut().enumerate() {
        *slot = u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    w
}

fn nonce_words(nonce: &[u8; 12]) -> [u32; 3] {
    [
        u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]),
        u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]),
        u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]),
    ]
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block_soft(key: &[u32; 8], nonce: &[u8; 12], counter: u32, out: &mut [u8; 64]) {
    let n = nonce_words(nonce);
    let mut init = [0u32; 16];
    init[..4].copy_from_slice(&SIGMA);
    init[4..12].copy_from_slice(key);
    init[12] = counter;
    init[13..].copy_from_slice(&n);

    let mut s = init;
    for _ in 0..10 {
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[4 * i..4 * i + 4].copy_from_slice(&s[i].wrapping_add(init[i]).to_le_bytes());
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::{nonce_words, SIGMA};
    use std::arch::x86_64::*;

    /// Rotate each 32-bit lane left by `L` bits; `R` must equal `32 - L`
    /// (the intrinsics take immediate shift counts, so both are spelled out).
    #[inline(always)]
    unsafe fn rotl<const L: i32, const R: i32>(v: __m128i) -> __m128i {
        _mm_or_si128(_mm_slli_epi32(v, L), _mm_srli_epi32(v, R))
    }

    /// One round step applied to all four columns (or diagonals) at once:
    /// the classic row-based layout where row `a` holds state words 0–3,
    /// `b` 4–7, `c` 8–11, `d` 12–15.
    #[inline(always)]
    unsafe fn round(a: &mut __m128i, b: &mut __m128i, c: &mut __m128i, d: &mut __m128i) {
        *a = _mm_add_epi32(*a, *b);
        *d = rotl::<16, 16>(_mm_xor_si128(*d, *a));
        *c = _mm_add_epi32(*c, *d);
        *b = rotl::<12, 20>(_mm_xor_si128(*b, *c));
        *a = _mm_add_epi32(*a, *b);
        *d = rotl::<8, 24>(_mm_xor_si128(*d, *a));
        *c = _mm_add_epi32(*c, *d);
        *b = rotl::<7, 25>(_mm_xor_si128(*b, *c));
    }

    /// Computes one 64-byte ChaCha20 keystream block with the state rows in
    /// xmm registers; diagonal rounds are column rounds on lane-rotated rows.
    ///
    /// # Safety
    /// The caller must ensure the CPU supports SSE2 (guaranteed by the
    /// backend detection in [`super::ChaCha20::new`]).
    #[target_feature(enable = "sse2")]
    pub unsafe fn block(key: &[u32; 8], nonce: &[u8; 12], counter: u32, out: &mut [u8; 64]) {
        let n = nonce_words(nonce);
        let a0 = _mm_set_epi32(
            SIGMA[3] as i32,
            SIGMA[2] as i32,
            SIGMA[1] as i32,
            SIGMA[0] as i32,
        );
        let b0 = _mm_set_epi32(key[3] as i32, key[2] as i32, key[1] as i32, key[0] as i32);
        let c0 = _mm_set_epi32(key[7] as i32, key[6] as i32, key[5] as i32, key[4] as i32);
        let d0 = _mm_set_epi32(n[2] as i32, n[1] as i32, n[0] as i32, counter as i32);

        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for _ in 0..10 {
            // Column round.
            round(&mut a, &mut b, &mut c, &mut d);
            // Diagonalize: rotate row lanes left by 1/2/3.
            b = _mm_shuffle_epi32(b, 0b00_11_10_01);
            c = _mm_shuffle_epi32(c, 0b01_00_11_10);
            d = _mm_shuffle_epi32(d, 0b10_01_00_11);
            // Diagonal round.
            round(&mut a, &mut b, &mut c, &mut d);
            // Undo the rotation.
            b = _mm_shuffle_epi32(b, 0b10_01_00_11);
            c = _mm_shuffle_epi32(c, 0b01_00_11_10);
            d = _mm_shuffle_epi32(d, 0b00_11_10_01);
        }
        a = _mm_add_epi32(a, a0);
        b = _mm_add_epi32(b, b0);
        c = _mm_add_epi32(c, c0);
        d = _mm_add_epi32(d, d0);

        let p = out.as_mut_ptr() as *mut __m128i;
        _mm_storeu_si128(p, a);
        _mm_storeu_si128(p.add(1), b);
        _mm_storeu_si128(p.add(2), c);
        _mm_storeu_si128(p.add(3), d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, slot) in k.iter_mut().enumerate() {
            *slot = i as u8;
        }
        k
    }

    /// RFC 8439 §2.3.2: the block function test vector.
    #[test]
    fn block_function_known_answer() {
        let key = rfc_key();
        let nonce = {
            let mut n = [0u8; 12];
            n.copy_from_slice(&hex("000000090000004a00000000"));
            n
        };
        let expect = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        let fast = ChaCha20::new(&key);
        assert_eq!(&fast.block(&nonce, 1)[..], &expect[..]);
        let soft = ChaCha20::new_soft(&key);
        assert_eq!(&soft.block(&nonce, 1)[..], &expect[..]);
    }

    /// RFC 8439 §2.4.2: the encryption test vector.
    #[test]
    fn encryption_known_answer() {
        let key = rfc_key();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&hex("000000000000004a00000000"));
        let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let expect = hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        for cipher in [ChaCha20::new(&key), ChaCha20::new_soft(&key)] {
            let mut buf = pt.to_vec();
            cipher.xor(&nonce, 1, &mut buf);
            assert_eq!(buf, expect);
            // XOR is its own inverse.
            cipher.xor(&nonce, 1, &mut buf);
            assert_eq!(&buf[..], &pt[..]);
        }
    }

    /// SSE2 and scalar backends agree across block boundaries and counters.
    #[test]
    fn backends_agree() {
        let key = rfc_key();
        let nonce = [7u8; 12];
        let fast = ChaCha20::new(&key);
        let soft = ChaCha20::new_soft(&key);
        for len in [0usize, 1, 63, 64, 65, 200, 1024] {
            for counter in [0u32, 1, u32::MAX - 1] {
                let mut a: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
                let mut b = a.clone();
                fast.xor(&nonce, counter, &mut a);
                soft.xor(&nonce, counter, &mut b);
                assert_eq!(a, b, "len={len} counter={counter}");
            }
        }
    }
}
