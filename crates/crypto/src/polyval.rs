//! POLYVAL — the little-endian universal hash of AES-GCM-SIV (RFC 8452 §3).
//!
//! POLYVAL is GHASH's bit-reflected twin: both evaluate a polynomial over
//! GF(2^128), but POLYVAL reads blocks little-endian and multiplies by the
//! "natural" x instead of GHASH's reflected one. RFC 8452 Appendix A gives
//! the exact correspondence:
//!
//! ```text
//! POLYVAL(H, X_1..X_n)
//!   = ByteReverse(GHASH(mulX_GHASH(ByteReverse(H)), ByteReverse(X_1), ...))
//! ```
//!
//! This module exploits that identity instead of writing a second field
//! multiplier: a [`Polyval`] is a [`GHash`] keyed by the transformed subkey,
//! with each block byte-reversed on the way in and the digest byte-reversed
//! on the way out. Every GHASH backend comes along for free — the PCLMULQDQ
//! kernel with 4-block aggregation on x86-64, the table-driven and bitwise
//! portable paths everywhere else — so POLYVAL's runtime dispatch is exactly
//! GHASH's (see [`crate::dispatch`] for the soft-force override).

use crate::ghash::{mulx_ghash, GHash, MulBackend};

/// Incremental POLYVAL state keyed by the 16-byte subkey `H`.
#[derive(Clone)]
pub struct Polyval {
    inner: GHash,
}

/// Byte-reverses one 16-byte block (LE ↔ BE field element conversion).
#[inline]
fn byte_reverse(block: &[u8; 16]) -> [u8; 16] {
    let mut out = *block;
    out.reverse();
    out
}

/// Translates a POLYVAL subkey into the equivalent GHASH subkey:
/// `mulX_GHASH(ByteReverse(H))` per RFC 8452 Appendix A.
fn ghash_subkey(h: &[u8; 16]) -> [u8; 16] {
    mulx_ghash(u128::from_be_bytes(byte_reverse(h))).to_be_bytes()
}

impl Polyval {
    /// Creates a POLYVAL instance for subkey `h` (16 bytes, wire order),
    /// selecting the fastest available GHASH backend.
    pub fn new(h: &[u8; 16]) -> Self {
        Polyval {
            inner: GHash::new(&ghash_subkey(h)),
        }
    }

    /// Creates an instance pinned to the portable bitwise reference
    /// (for cross-checks and forced-soft dispatch).
    pub fn new_soft(h: &[u8; 16]) -> Self {
        Polyval {
            inner: GHash::new_soft(&ghash_subkey(h)),
        }
    }

    /// The multiplication backend in use.
    pub fn backend(&self) -> MulBackend {
        self.inner.backend()
    }

    /// Absorbs one full 16-byte block.
    #[inline]
    pub fn update_block(&mut self, block: &[u8; 16]) {
        self.inner.update_block(&byte_reverse(block));
    }

    /// Absorbs `data`, zero-padding the final partial block (the padding
    /// AES-GCM-SIV applies to both AAD and plaintext).
    ///
    /// Blocks are byte-reversed into 64-byte stack chunks so the underlying
    /// GHASH still sees 4-block runs and keeps its aggregated PCLMUL path.
    pub fn update_padded(&mut self, data: &[u8]) {
        let mut quads = data.chunks_exact(64);
        for quad in &mut quads {
            let mut buf = [0u8; 64];
            for i in 0..4 {
                let mut b = [0u8; 16];
                b.copy_from_slice(&quad[16 * i..16 * i + 16]);
                b.reverse();
                buf[16 * i..16 * i + 16].copy_from_slice(&b);
            }
            self.inner.update_padded(&buf);
        }
        let rem = quads.remainder();
        for chunk in rem.chunks(16) {
            let mut b = [0u8; 16];
            b[..chunk.len()].copy_from_slice(chunk);
            self.update_block(&b);
        }
    }

    /// Returns the digest as a 16-byte block (wire order).
    pub fn finalize(&self) -> [u8; 16] {
        byte_reverse(&self.inner.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    /// RFC 8452 Appendix A worked example.
    #[test]
    fn polyval_known_answer() {
        let h = hex16("25629347589242761d31f826ba4b757b");
        let x1 = hex16("4f4f95668c83dfb6401762bb2d01a262");
        let x2 = hex16("d1a24ddd2721d006bbe45f20d3c9f362");
        let mut p = Polyval::new(&h);
        p.update_block(&x1);
        p.update_block(&x2);
        assert_eq!(p.finalize(), hex16("f7a3b47b846119fae5b7866cf5e5b77e"));

        let mut soft = Polyval::new_soft(&h);
        soft.update_block(&x1);
        soft.update_block(&x2);
        assert_eq!(soft.finalize(), hex16("f7a3b47b846119fae5b7866cf5e5b77e"));
    }

    /// The chunked padded path equals block-at-a-time absorption, across the
    /// 64-byte aggregation boundary, on both backends.
    #[test]
    fn update_padded_matches_blockwise() {
        let h = hex16("25629347589242761d31f826ba4b757b");
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 128, 200, 256] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 3) as u8).collect();
            let mut bulk = Polyval::new(&h);
            bulk.update_padded(&data);
            let mut soft = Polyval::new_soft(&h);
            soft.update_padded(&data);

            let mut reference = Polyval::new_soft(&h);
            for chunk in data.chunks(16) {
                let mut b = [0u8; 16];
                b[..chunk.len()].copy_from_slice(chunk);
                reference.update_block(&b);
            }
            assert_eq!(bulk.finalize(), reference.finalize(), "len = {len}");
            assert_eq!(soft.finalize(), reference.finalize(), "len = {len}");
        }
    }

    /// POLYVAL of a single block X under subkey H where H = 1 in the POLYVAL
    /// field times x^-128 cancellation is hard to eyeball; instead pin the
    /// linearity property: POLYVAL(H, A ⊕ B) = POLYVAL(H, A) ⊕ POLYVAL(H, B).
    #[test]
    fn polyval_is_linear_per_block() {
        let h = hex16("25629347589242761d31f826ba4b757b");
        let a = hex16("0123456789abcdef0011223344556677");
        let b = hex16("fedcba98765432100ff0e1d2c3b4a596");
        let mut xab = [0u8; 16];
        for i in 0..16 {
            xab[i] = a[i] ^ b[i];
        }
        let digest = |block: &[u8; 16]| {
            let mut p = Polyval::new(&h);
            p.update_block(block);
            p.finalize()
        };
        let da = digest(&a);
        let db = digest(&b);
        let dx = digest(&xab);
        for i in 0..16 {
            assert_eq!(dx[i], da[i] ^ db[i]);
        }
    }
}
