//! Wall-clock throughput probes for the AEAD hot paths.
//!
//! Measures what this machine actually sustains through
//! [`seal_message_into`] and [`open_message_in_place`] — the exact
//! buffer-reusing calls the runtime's encrypted transport makes — so
//! benchmark reports can carry real crypto throughput next to the
//! virtual-time latencies. [`probe_throughput`] probes the default
//! AES-GCM suite; [`probe_throughput_suite`] probes any [`CipherSuite`]
//! (the per-backend calibration in `eag-bench` runs it for all three).
//! Wall-clock numbers are machine- and load-dependent by nature; callers
//! must treat them as informational, not as regression-gate inputs.

use crate::{open_message_in_place, seal_message_into, CipherSuite, Key, NonceSource};
use std::time::Instant;

/// Throughput measured at one message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Plaintext message size in bytes.
    pub msg_bytes: usize,
    /// Seal (encrypt + tag) throughput, MB/s (10^6 plaintext bytes per
    /// wall-clock second).
    pub seal_mb_per_s: f64,
    /// Open (verify + decrypt) throughput, MB/s.
    pub open_mb_per_s: f64,
}

/// Default sizes for a quick probe: 1 KiB, 16 KiB, 256 KiB, 1 MiB.
pub const DEFAULT_PROBE_SIZES: [usize; 4] = [1024, 16 * 1024, 256 * 1024, 1024 * 1024];

/// Measures seal/open throughput of the default AES-GCM suite at each size
/// in `sizes`.
///
/// `budget_secs` is the approximate wall-clock budget *per direction per
/// size* (a calibration pass sizes the iteration count to fit it; at least
/// 3 iterations always run). `probe_throughput(&DEFAULT_PROBE_SIZES, 0.05)`
/// finishes in well under a second on anything modern.
pub fn probe_throughput(sizes: &[usize], budget_secs: f64) -> Vec<ThroughputPoint> {
    probe_throughput_suite(CipherSuite::AesGcm128, sizes, budget_secs)
}

/// Measures seal/open throughput of one cipher suite at each size in
/// `sizes` (same budget semantics as [`probe_throughput`]).
pub fn probe_throughput_suite(
    suite: CipherSuite,
    sizes: &[usize],
    budget_secs: f64,
) -> Vec<ThroughputPoint> {
    let cipher = suite.aead_for_key(&Key::from_bytes([0x5Au8; 16]));
    let cipher = &*cipher;
    let mut nonces = NonceSource::seeded(0xBE7C);
    sizes
        .iter()
        .map(|&msg_bytes| {
            let plaintext = vec![0xC3u8; msg_bytes];
            let mut wire = Vec::new();
            let seal_secs = time_op(budget_secs, || {
                seal_message_into(cipher, &mut nonces, b"", &plaintext, &mut wire);
                std::hint::black_box(wire.len());
            });
            // `wire` now holds a valid frame; open copies it fresh each
            // iteration since opening consumes the frame in place. The copy
            // is subtracted via a memcpy-only baseline.
            seal_message_into(cipher, &mut nonces, b"", &plaintext, &mut wire);
            let mut scratch = Vec::new();
            let open_with_copy = time_op(budget_secs, || {
                scratch.clear();
                scratch.extend_from_slice(&wire);
                open_message_in_place(cipher, b"", &mut scratch).expect("frame is authentic");
                std::hint::black_box(scratch.len());
            });
            let copy_only = time_op(budget_secs * 0.2, || {
                scratch.clear();
                scratch.extend_from_slice(&wire);
                std::hint::black_box(scratch.len());
            });
            let open_secs = (open_with_copy - copy_only).max(open_with_copy * 0.05);
            ThroughputPoint {
                msg_bytes,
                seal_mb_per_s: mb_per_s(msg_bytes, seal_secs),
                open_mb_per_s: mb_per_s(msg_bytes, open_secs),
            }
        })
        .collect()
}

fn mb_per_s(bytes: usize, secs_per_op: f64) -> f64 {
    bytes as f64 / secs_per_op.max(1e-12) / 1e6
}

/// Times `op`, returning seconds per call: one calibration call sizes the
/// iteration count to roughly `budget_secs`, then the batch is averaged.
fn time_op(budget_secs: f64, mut op: impl FnMut()) -> f64 {
    let probe = Instant::now();
    op();
    let one = probe.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget_secs / one).ceil() as usize).clamp(3, 100_000);
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_positive_finite_throughput() {
        let points = probe_throughput(&[1024, 8192], 0.005);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.seal_mb_per_s.is_finite() && p.seal_mb_per_s > 0.0,
                "{p:?}"
            );
            assert!(
                p.open_mb_per_s.is_finite() && p.open_mb_per_s > 0.0,
                "{p:?}"
            );
        }
    }
}
