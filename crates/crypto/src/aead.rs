//! The AEAD seam: one trait over every cipher suite, plus runtime selection.
//!
//! Everything above this crate (the runtime's encrypted transport, the
//! framing helpers in [`crate`], the bench probes) speaks [`Aead`] — the
//! detached in-place seal/open/verify surface that the fused GCM pipeline
//! already exposed. The three implementations are:
//!
//! | suite | cipher | misuse posture | fast path |
//! |---|---|---|---|
//! | [`CipherSuite::AesGcm128`] | AES-128-GCM | nonce reuse is catastrophic | fused AES-NI+PCLMUL |
//! | [`CipherSuite::AesGcmSiv128`] | AES-128-GCM-SIV | misuse-resistant | AES-NI + PCLMUL POLYVAL |
//! | [`CipherSuite::ChaCha20Poly1305`] | ChaCha20-Poly1305 | nonce reuse leaks XOR | SSE2 (no AES-NI needed) |
//!
//! All suites share 12-byte nonces and 16-byte tags, so the wire framing
//! (and [`crate::WIRE_OVERHEAD`]) is suite-invariant: a frame's suite is
//! session configuration, not wire format. Backend dispatch happens inside
//! each implementation (see [`crate::dispatch`] for the forced-soft
//! override); selecting a *suite* is this module's job, via
//! [`CipherSuite::aead_for_key`].

use crate::chacha20poly1305::ChaCha20Poly1305;
use crate::gcm::{AesGcm, OpenError, TAG_LEN};
use crate::gcm_siv::AesGcmSiv;
use crate::nonce::Nonce;
use crate::Key;

/// The detached AEAD surface every cipher suite implements.
///
/// Object-safe: the runtime holds a `&dyn Aead` per world and the framing
/// helpers ([`crate::seal_segments_into`], [`crate::open_frame_in_place`],
/// …) are generic over `A: Aead + ?Sized`, so static and dynamic callers
/// share one code path.
pub trait Aead: Send + Sync {
    /// The suite this instance implements.
    fn suite(&self) -> CipherSuite;

    /// Encrypts `data` in place and returns the 16-byte authentication tag.
    fn seal_in_place_detached(&self, nonce: &Nonce, aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN];

    /// Verifies `tag` and decrypts `data` (ciphertext) in place. On failure
    /// no unauthenticated plaintext escapes: suites that must decrypt before
    /// verifying (GCM, GCM-SIV) zero the buffer; ChaCha20-Poly1305 verifies
    /// first and leaves the ciphertext untouched.
    fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError>;

    /// Verifies the tag of `ciphertext` without exposing plaintext — the
    /// per-hop forwarding check. GCM and ChaCha20-Poly1305 authenticate the
    /// ciphertext directly (no decryption at all); the default
    /// implementation for plaintext-authenticating suites (GCM-SIV)
    /// decrypts a scratch copy and discards it.
    fn verify_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        let mut scratch = ciphertext.to_vec();
        self.open_in_place_detached(nonce, aad, &mut scratch, tag)
    }
}

impl Aead for AesGcm {
    fn suite(&self) -> CipherSuite {
        CipherSuite::AesGcm128
    }

    fn seal_in_place_detached(&self, nonce: &Nonce, aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN] {
        AesGcm::seal_in_place_detached(self, nonce, aad, data)
    }

    fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        AesGcm::open_in_place_detached(self, nonce, aad, data, tag)
    }

    fn verify_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        AesGcm::verify_detached(self, nonce, aad, ciphertext, tag)
    }
}

impl Aead for AesGcmSiv {
    fn suite(&self) -> CipherSuite {
        CipherSuite::AesGcmSiv128
    }

    fn seal_in_place_detached(&self, nonce: &Nonce, aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN] {
        AesGcmSiv::seal_in_place_detached(self, nonce, aad, data)
    }

    fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        AesGcmSiv::open_in_place_detached(self, nonce, aad, data, tag)
    }
    // verify_detached: default (decrypt-and-discard) — SIV tags cover the
    // plaintext, so there is no ciphertext-only check.
}

impl Aead for ChaCha20Poly1305 {
    fn suite(&self) -> CipherSuite {
        CipherSuite::ChaCha20Poly1305
    }

    fn seal_in_place_detached(&self, nonce: &Nonce, aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN] {
        ChaCha20Poly1305::seal_in_place_detached(self, nonce, aad, data)
    }

    fn open_in_place_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        ChaCha20Poly1305::open_in_place_detached(self, nonce, aad, data, tag)
    }

    fn verify_detached(
        &self,
        nonce: &Nonce,
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8],
    ) -> Result<(), OpenError> {
        ChaCha20Poly1305::verify_detached(self, nonce, aad, ciphertext, tag)
    }
}

/// The cipher suites a session can run under.
///
/// Serialized by [`CipherSuite::name`] everywhere (bench reports, CLI flags,
/// trace labels) — the numeric [`CipherSuite::id`] exists only for the
/// metrics stamp, which is a `u64` struct of counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherSuite {
    /// AES-128-GCM — the paper's scheme and the default.
    AesGcm128,
    /// AES-128-GCM-SIV — nonce-misuse-resistant sessions.
    AesGcmSiv128,
    /// ChaCha20-Poly1305 — hosts without AES-NI.
    ChaCha20Poly1305,
}

impl CipherSuite {
    /// Every suite, in `id` order.
    pub const ALL: [CipherSuite; 3] = [
        CipherSuite::AesGcm128,
        CipherSuite::AesGcmSiv128,
        CipherSuite::ChaCha20Poly1305,
    ];

    /// The canonical (CLI / report) name.
    pub fn name(self) -> &'static str {
        match self {
            CipherSuite::AesGcm128 => "aes-gcm",
            CipherSuite::AesGcmSiv128 => "aes-gcm-siv",
            CipherSuite::ChaCha20Poly1305 => "chacha20-poly1305",
        }
    }

    /// Parses a suite name (canonical names plus common short aliases).
    pub fn by_name(name: &str) -> Option<CipherSuite> {
        match name {
            "aes-gcm" | "gcm" | "aes-gcm-128" => Some(CipherSuite::AesGcm128),
            "aes-gcm-siv" | "gcm-siv" | "siv" => Some(CipherSuite::AesGcmSiv128),
            "chacha20-poly1305" | "chacha" | "chacha20" => Some(CipherSuite::ChaCha20Poly1305),
            _ => None,
        }
    }

    /// A small non-zero numeric id for stamping into metrics counters
    /// (0 is reserved for "unset").
    pub fn id(self) -> u64 {
        match self {
            CipherSuite::AesGcm128 => 1,
            CipherSuite::AesGcmSiv128 => 2,
            CipherSuite::ChaCha20Poly1305 => 3,
        }
    }

    /// The suite with the given [`CipherSuite::id`], if any.
    pub fn from_id(id: u64) -> Option<CipherSuite> {
        CipherSuite::ALL.iter().copied().find(|s| s.id() == id)
    }

    /// Constructs the suite's AEAD over a 128-bit session key.
    ///
    /// AES suites use the key directly; ChaCha20-Poly1305 expands it to 256
    /// bits (see [`ChaCha20Poly1305::new`]). Backend dispatch (SIMD vs.
    /// soft) happens inside the constructor per [`crate::dispatch`].
    pub fn aead_for_key(self, key: &Key) -> Box<dyn Aead> {
        match self {
            CipherSuite::AesGcm128 => Box::new(AesGcm::new(key)),
            CipherSuite::AesGcmSiv128 => Box::new(AesGcmSiv::new(key)),
            CipherSuite::ChaCha20Poly1305 => Box::new(ChaCha20Poly1305::new(key)),
        }
    }

    /// Like [`CipherSuite::aead_for_key`] but pinned to the portable
    /// backends (the dispatch-equivalence tests compare the two).
    pub fn aead_for_key_soft(self, key: &Key) -> Box<dyn Aead> {
        match self {
            CipherSuite::AesGcm128 => {
                // AesGcm has no dedicated soft constructor; route through the
                // process-wide force (tests use the component new_softs).
                Box::new(AesGcm::new(key))
            }
            CipherSuite::AesGcmSiv128 => Box::new(AesGcmSiv::new_soft(key)),
            CipherSuite::ChaCha20Poly1305 => Box::new(ChaCha20Poly1305::new_soft(key)),
        }
    }
}

impl std::fmt::Display for CipherSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nonce::NonceSource;

    #[test]
    fn names_round_trip() {
        for suite in CipherSuite::ALL {
            assert_eq!(CipherSuite::by_name(suite.name()), Some(suite));
            assert_eq!(CipherSuite::from_id(suite.id()), Some(suite));
            assert_eq!(format!("{suite}"), suite.name());
        }
        assert_eq!(CipherSuite::by_name("des"), None);
        assert_eq!(CipherSuite::from_id(0), None);
    }

    #[test]
    fn every_suite_roundtrips_through_the_trait() {
        let key = Key::from_bytes([0xA1u8; 16]);
        for suite in CipherSuite::ALL {
            let aead = suite.aead_for_key(&key);
            assert_eq!(aead.suite(), suite);
            let mut src = NonceSource::seeded(17);
            for len in [0usize, 1, 16, 127, 128, 129, 1000] {
                let pt: Vec<u8> = (0..len).map(|i| (i * 3 % 251) as u8).collect();
                let wire = crate::seal_message(&*aead, &mut src, b"aad", &pt);
                assert_eq!(wire.len(), pt.len() + crate::WIRE_OVERHEAD, "{suite}");
                assert!(
                    crate::verify_message(&*aead, b"aad", &wire).is_ok(),
                    "{suite}"
                );
                assert!(
                    crate::verify_message(&*aead, b"bad", &wire).is_err(),
                    "{suite}"
                );
                let back = crate::open_message(&*aead, b"aad", &wire).unwrap();
                assert_eq!(back, pt, "{suite} len {len}");
            }
        }
    }

    #[test]
    fn suites_are_mutually_unintelligible() {
        // A frame sealed under one suite must not open under another, even
        // with the same key and nonce stream seed.
        let key = Key::from_bytes([0x33u8; 16]);
        for a in CipherSuite::ALL {
            for b in CipherSuite::ALL {
                if a == b {
                    continue;
                }
                let sealer = a.aead_for_key(&key);
                let opener = b.aead_for_key(&key);
                let wire =
                    crate::seal_message(&*sealer, &mut NonceSource::seeded(4), b"", b"payload");
                assert!(
                    crate::open_message(&*opener, b"", &wire).is_err(),
                    "{a} frame opened under {b}"
                );
            }
        }
    }
}
