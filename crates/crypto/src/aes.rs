//! The AES block cipher (FIPS 197) for 128-, 192-, and 256-bit keys.
//!
//! Three implementations live here:
//! - a portable software implementation built on the S-box with column-wise
//!   `MixColumns`, used everywhere as the reference;
//! - a constant-time portable variant that computes the S-box algebraically
//!   (inversion in GF(2^8) by exponentiation) instead of by table lookup,
//!   for environments where table-timing side channels matter and AES-NI is
//!   unavailable;
//! - an AES-NI implementation behind runtime CPU feature detection on
//!   x86-64, used automatically when available (and constant-time by
//!   construction).
//!
//! Only the pieces GCM needs are on the hot path (block encryption and the
//! fused CTR loop); the inverse cipher is provided for completeness and is
//! exercised by tests.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// Maximum number of rounds (AES-256).
const MAX_ROUNDS: usize = 14;

/// The AES S-box.
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (built at first use from [`SBOX`]).
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// General GF(2^8) multiplication (used by the inverse cipher, the
/// constant-time S-box, and tests). Constant-time: the loop shape depends
/// only on public values.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        // Conditionally XOR without branching on secret bits.
        acc ^= a & 0u8.wrapping_sub(b & 1);
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// The AES S-box computed algebraically: `affine(x^254)` in GF(2^8).
/// Table-free and constant-time (at the cost of ~30 field multiplications).
pub fn sbox_constant_time(x: u8) -> u8 {
    // x^254 = inverse(x) for x != 0, and 0 for x = 0 (as required).
    // Addition chain: compute x^2, x^3, x^6, x^12, x^15, x^240, x^254.
    let x2 = gf_mul(x, x);
    let x3 = gf_mul(x2, x);
    let x6 = gf_mul(x3, x3);
    let x12 = gf_mul(x6, x6);
    let x15 = gf_mul(x12, x3);
    let x30 = gf_mul(x15, x15);
    let x60 = gf_mul(x30, x30);
    let x120 = gf_mul(x60, x60);
    let x240 = gf_mul(x120, x120);
    let x252 = gf_mul(x240, x12);
    let inv = gf_mul(x252, x2); // x^254

    // Affine transformation: b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^ rotl4(b) ^ 0x63.
    inv ^ inv.rotate_left(1) ^ inv.rotate_left(2) ^ inv.rotate_left(3) ^ inv.rotate_left(4) ^ 0x63
}

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn key_len(&self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of cipher rounds.
    pub fn rounds(&self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    fn from_key_len(len: usize) -> KeySize {
        match len {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            other => panic!("unsupported AES key length: {other} bytes"),
        }
    }
}

/// Expanded round keys (11, 13, or 15 of them depending on key size).
#[derive(Clone)]
pub struct RoundKeys {
    rk: [[u8; 16]; MAX_ROUNDS + 1],
    rounds: usize,
}

impl RoundKeys {
    /// Runs the FIPS-197 key expansion for a 16-, 24-, or 32-byte key.
    pub fn expand(key: &[u8]) -> Self {
        let size = KeySize::from_key_len(key.len());
        let nk = key.len() / 4;
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);

        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                // AES-256 extra SubWord step.
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }

        let mut rk = [[0u8; 16]; MAX_ROUNDS + 1];
        for (r, round_key) in rk.iter_mut().enumerate().take(rounds + 1) {
            for c in 0..4 {
                round_key[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        RoundKeys { rk, rounds }
    }

    /// The round-key slice (rounds + 1 entries).
    #[inline]
    pub fn keys(&self) -> &[[u8; 16]] {
        &self.rk[..self.rounds + 1]
    }

    /// Number of cipher rounds.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// Which implementation the cipher dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable software implementation (table-based S-box).
    Soft,
    /// Portable constant-time implementation (algebraic S-box).
    SoftConstantTime,
    /// x86-64 AES-NI instructions.
    AesNi,
}

/// An AES cipher instance with an expanded key (any supported key size).
#[derive(Clone)]
pub struct Aes {
    keys: RoundKeys,
    backend: Backend,
}

/// AES with a 128-bit key (the paper's AES-GCM-128 building block).
pub type Aes128 = Aes;

impl Aes {
    /// Expands a 16-, 24-, or 32-byte `key` and selects the fastest
    /// available backend.
    pub fn new(key: &[u8]) -> Self {
        Aes {
            keys: RoundKeys::expand(key),
            backend: detect_backend(),
        }
    }

    /// Forces the portable table-based backend (for tests and cross-checks).
    pub fn new_soft(key: &[u8]) -> Self {
        Aes {
            keys: RoundKeys::expand(key),
            backend: Backend::Soft,
        }
    }

    /// Forces the portable constant-time backend (no table lookups).
    pub fn new_constant_time(key: &[u8]) -> Self {
        Aes {
            keys: RoundKeys::expand(key),
            backend: Backend::SoftConstantTime,
        }
    }

    /// The backend this instance dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The expanded round keys (for the fused CTR+GHASH kernel).
    #[inline]
    pub(crate) fn round_keys(&self) -> &RoundKeys {
        &self.keys
    }

    /// The key size in force.
    pub fn key_size(&self) -> KeySize {
        match self.keys.rounds() {
            10 => KeySize::Aes128,
            12 => KeySize::Aes192,
            _ => KeySize::Aes256,
        }
    }

    /// Encrypts one 16-byte block in place.
    #[inline]
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        match self.backend {
            Backend::Soft => encrypt_soft(&self.keys, block, false),
            Backend::SoftConstantTime => encrypt_soft(&self.keys, block, true),
            Backend::AesNi => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: backend is only AesNi when the CPU reports AES support.
                unsafe {
                    aesni::encrypt_block(&self.keys, block)
                }
                #[cfg(not(target_arch = "x86_64"))]
                encrypt_soft(&self.keys, block, false)
            }
        }
    }

    /// Decrypts one 16-byte block in place (inverse cipher).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        // The inverse cipher is off the GCM hot path; the portable
        // implementation is used unconditionally.
        decrypt_soft(&self.keys, block);
    }

    /// XORs `data` with the CTR keystream starting at counter block `icb`
    /// (GCM `inc32` semantics: only the low 32 bits increment). The AES-NI
    /// path loads the round keys once and pipelines eight blocks.
    pub fn xor_ctr_keystream(&self, icb: &[u8; 16], data: &mut [u8]) {
        match self.backend {
            Backend::Soft | Backend::SoftConstantTime => xor_ctr_soft(self, icb, data),
            Backend::AesNi => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: backend is only AesNi when the CPU reports AES
                // (and SSE2, implied by x86-64) support.
                unsafe {
                    aesni::xor_ctr(&self.keys, icb, data)
                }
                #[cfg(not(target_arch = "x86_64"))]
                xor_ctr_soft(self, icb, data)
            }
        }
    }

    /// Encrypts four consecutive blocks; the AES-NI path pipelines them.
    #[inline]
    pub fn encrypt_blocks4(&self, blocks: &mut [u8; 64]) {
        match self.backend {
            Backend::Soft | Backend::SoftConstantTime => {
                for i in 0..4 {
                    let mut b = [0u8; 16];
                    b.copy_from_slice(&blocks[16 * i..16 * i + 16]);
                    self.encrypt_block(&mut b);
                    blocks[16 * i..16 * i + 16].copy_from_slice(&b);
                }
            }
            Backend::AesNi => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: backend is only AesNi when the CPU reports AES support.
                unsafe {
                    aesni::encrypt_blocks4(&self.keys, blocks)
                }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("AesNi backend selected on non-x86_64")
            }
        }
    }
}

fn detect_backend() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if !crate::dispatch::force_soft() && std::arch::is_x86_feature_detected!("aes") {
            return Backend::AesNi;
        }
    }
    Backend::Soft
}

/// Portable CTR keystream XOR (block-at-a-time).
fn xor_ctr_soft(aes: &Aes, icb: &[u8; 16], data: &mut [u8]) {
    let mut counter = *icb;
    let mut ctr32 = u32::from_be_bytes([counter[12], counter[13], counter[14], counter[15]]);
    for chunk in data.chunks_mut(16) {
        counter[12..].copy_from_slice(&ctr32.to_be_bytes());
        ctr32 = ctr32.wrapping_add(1);
        let mut ks = counter;
        aes.encrypt_block(&mut ks);
        for (d, k) in chunk.iter_mut().zip(ks.iter()) {
            *d ^= k;
        }
    }
}

// ---------------------------------------------------------------------------
// Portable implementation
// ---------------------------------------------------------------------------

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16], constant_time: bool) {
    if constant_time {
        for s in state.iter_mut() {
            *s = sbox_constant_time(*s);
        }
    } else {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for s in state.iter_mut() {
        *s = inv[*s as usize];
    }
}

/// State layout: byte `i` of the buffer is row `i % 4`, column `i / 4`
/// (FIPS-197 column-major order, matching the wire order of the block).
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift right by 2 (same as left by 2).
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (= left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        let x = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ x ^ xtime(a0 ^ a1);
        col[1] = a1 ^ x ^ xtime(a1 ^ a2);
        col[2] = a2 ^ x ^ xtime(a2 ^ a3);
        col[3] = a3 ^ x ^ xtime(a3 ^ a0);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        col[0] = gf_mul(a0, 0x0e) ^ gf_mul(a1, 0x0b) ^ gf_mul(a2, 0x0d) ^ gf_mul(a3, 0x09);
        col[1] = gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0e) ^ gf_mul(a2, 0x0b) ^ gf_mul(a3, 0x0d);
        col[2] = gf_mul(a0, 0x0d) ^ gf_mul(a1, 0x09) ^ gf_mul(a2, 0x0e) ^ gf_mul(a3, 0x0b);
        col[3] = gf_mul(a0, 0x0b) ^ gf_mul(a1, 0x0d) ^ gf_mul(a2, 0x09) ^ gf_mul(a3, 0x0e);
    }
}

fn encrypt_soft(keys: &RoundKeys, block: &mut [u8; 16], constant_time: bool) {
    let rk = keys.keys();
    let rounds = keys.rounds();
    add_round_key(block, &rk[0]);
    for round_key in rk.iter().take(rounds).skip(1) {
        sub_bytes(block, constant_time);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, round_key);
    }
    sub_bytes(block, constant_time);
    shift_rows(block);
    add_round_key(block, &rk[rounds]);
}

fn decrypt_soft(keys: &RoundKeys, block: &mut [u8; 16]) {
    let rk = keys.keys();
    let rounds = keys.rounds();
    add_round_key(block, &rk[rounds]);
    for round in (1..rounds).rev() {
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &rk[round]);
        inv_mix_columns(block);
    }
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, &rk[0]);
}

// ---------------------------------------------------------------------------
// AES-NI implementation (x86-64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod aesni {
    use super::{RoundKeys, MAX_ROUNDS};
    use std::arch::x86_64::*;

    #[inline]
    pub(crate) unsafe fn load_keys(keys: &RoundKeys) -> ([__m128i; MAX_ROUNDS + 1], usize) {
        let mut out = [_mm_setzero_si128(); MAX_ROUNDS + 1];
        for (o, rk) in out.iter_mut().zip(keys.keys().iter()) {
            *o = _mm_loadu_si128(rk.as_ptr() as *const __m128i);
        }
        (out, keys.rounds())
    }

    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_block(keys: &RoundKeys, block: &mut [u8; 16]) {
        let (rk, rounds) = load_keys(keys);
        let mut b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
        b = _mm_xor_si128(b, rk[0]);
        for k in rk.iter().take(rounds).skip(1) {
            b = _mm_aesenc_si128(b, *k);
        }
        b = _mm_aesenclast_si128(b, rk[rounds]);
        _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, b);
    }

    /// CTR keystream XOR with round keys hoisted out of the loop and eight
    /// independent blocks in flight to fill the AESENC pipeline.
    #[target_feature(enable = "aes")]
    pub unsafe fn xor_ctr(keys: &RoundKeys, icb: &[u8; 16], data: &mut [u8]) {
        let (rk, rounds) = load_keys(keys);
        let base = _mm_loadu_si128(icb.as_ptr() as *const __m128i);
        // Counter handling: GCM increments only the last (big-endian) u32.
        let mut ctr32 = u32::from_be_bytes([icb[12], icb[13], icb[14], icb[15]]);
        let word_mask = _mm_set_epi32(-1, 0, 0, 0);
        let base_hi = _mm_andnot_si128(word_mask, base);

        #[inline]
        unsafe fn counter_block(base_hi: __m128i, ctr32: u32) -> __m128i {
            let word = _mm_set_epi32(ctr32.swap_bytes() as i32, 0, 0, 0);
            _mm_or_si128(base_hi, word)
        }

        let mut offset = 0usize;
        while data.len() - offset >= 128 {
            let mut blocks = [_mm_setzero_si128(); 8];
            for b in blocks.iter_mut() {
                *b = _mm_xor_si128(counter_block(base_hi, ctr32), rk[0]);
                ctr32 = ctr32.wrapping_add(1);
            }
            for k in rk.iter().take(rounds).skip(1) {
                for b in blocks.iter_mut() {
                    *b = _mm_aesenc_si128(*b, *k);
                }
            }
            let p = data.as_mut_ptr().add(offset) as *mut __m128i;
            for (i, b) in blocks.iter().enumerate() {
                let ks = _mm_aesenclast_si128(*b, rk[rounds]);
                let d = _mm_loadu_si128(p.add(i));
                _mm_storeu_si128(p.add(i), _mm_xor_si128(d, ks));
            }
            offset += 128;
        }

        // Single-block tail.
        while offset < data.len() {
            let mut b = _mm_xor_si128(counter_block(base_hi, ctr32), rk[0]);
            ctr32 = ctr32.wrapping_add(1);
            for k in rk.iter().take(rounds).skip(1) {
                b = _mm_aesenc_si128(b, *k);
            }
            b = _mm_aesenclast_si128(b, rk[rounds]);
            let mut ks = [0u8; 16];
            _mm_storeu_si128(ks.as_mut_ptr() as *mut __m128i, b);
            let take = (data.len() - offset).min(16);
            for (d, k) in data[offset..offset + take].iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
            offset += take;
        }
    }

    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_blocks4(keys: &RoundKeys, blocks: &mut [u8; 64]) {
        let (rk, rounds) = load_keys(keys);
        let p = blocks.as_mut_ptr() as *mut __m128i;
        let mut b0 = _mm_loadu_si128(p);
        let mut b1 = _mm_loadu_si128(p.add(1));
        let mut b2 = _mm_loadu_si128(p.add(2));
        let mut b3 = _mm_loadu_si128(p.add(3));
        b0 = _mm_xor_si128(b0, rk[0]);
        b1 = _mm_xor_si128(b1, rk[0]);
        b2 = _mm_xor_si128(b2, rk[0]);
        b3 = _mm_xor_si128(b3, rk[0]);
        for k in rk.iter().take(rounds).skip(1) {
            b0 = _mm_aesenc_si128(b0, *k);
            b1 = _mm_aesenc_si128(b1, *k);
            b2 = _mm_aesenc_si128(b2, *k);
            b3 = _mm_aesenc_si128(b3, *k);
        }
        b0 = _mm_aesenclast_si128(b0, rk[rounds]);
        b1 = _mm_aesenclast_si128(b1, rk[rounds]);
        b2 = _mm_aesenclast_si128(b2, rk[rounds]);
        b3 = _mm_aesenclast_si128(b3, rk[rounds]);
        _mm_storeu_si128(p, b0);
        _mm_storeu_si128(p.add(1), b1);
        _mm_storeu_si128(p.add(2), b2);
        _mm_storeu_si128(p.add(3), b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes::new_soft(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expect);
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    /// FIPS-197 Appendix C known-answer tests for all three key sizes.
    #[test]
    fn fips197_appendix_c_all_key_sizes() {
        let plain: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);

        // C.1: AES-128.
        let key128: Vec<u8> = (0..16).map(|i| i as u8).collect();
        let mut block = plain;
        Aes::new_soft(&key128).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );

        // C.2: AES-192.
        let key192: Vec<u8> = (0..24).map(|i| i as u8).collect();
        let mut block = plain;
        Aes::new_soft(&key192).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
                0x71, 0x91
            ]
        );

        // C.3: AES-256.
        let key256: Vec<u8> = (0..32).map(|i| i as u8).collect();
        let mut block = plain;
        Aes::new_soft(&key256).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89
            ]
        );
    }

    #[test]
    fn all_backends_agree_for_all_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 7 + 3) as u8).collect();
            let hw = Aes::new(&key);
            let sw = Aes::new_soft(&key);
            let ct = Aes::new_constant_time(&key);
            for seed in 0u8..16 {
                let mut a: [u8; 16] =
                    core::array::from_fn(|i| seed.wrapping_mul(17).wrapping_add(i as u8));
                let mut b = a;
                let mut c = a;
                hw.encrypt_block(&mut a);
                sw.encrypt_block(&mut b);
                ct.encrypt_block(&mut c);
                assert_eq!(a, b, "hw vs soft, key_len {key_len}");
                assert_eq!(b, c, "soft vs constant-time, key_len {key_len}");
            }
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_all_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 31) as u8).collect();
            let aes = Aes::new_soft(&key);
            for seed in 0u8..16 {
                let original: [u8; 16] =
                    core::array::from_fn(|i| seed.wrapping_mul(31).wrapping_add((i * i) as u8));
                let mut block = original;
                aes.encrypt_block(&mut block);
                assert_ne!(block, original);
                aes.decrypt_block(&mut block);
                assert_eq!(block, original);
            }
        }
    }

    #[test]
    fn constant_time_sbox_matches_table() {
        for x in 0..=255u8 {
            assert_eq!(sbox_constant_time(x), SBOX[x as usize], "x = {x:#04x}");
        }
    }

    #[test]
    fn blocks4_matches_single_block_path() {
        let key = [0x3Cu8; 16];
        let aes = Aes::new(&key);
        let mut quad = [0u8; 64];
        for (i, q) in quad.iter_mut().enumerate() {
            *q = (i * 7 % 256) as u8;
        }
        let mut expect = quad;
        for i in 0..4 {
            let mut b = [0u8; 16];
            b.copy_from_slice(&expect[16 * i..16 * i + 16]);
            aes.encrypt_block(&mut b);
            expect[16 * i..16 * i + 16].copy_from_slice(&b);
        }
        aes.encrypt_blocks4(&mut quad);
        assert_eq!(quad, expect);
    }

    #[test]
    fn ctr_keystream_matches_across_backends_and_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 13 + 1) as u8).collect();
            let hw = Aes::new(&key);
            let sw = Aes::new_soft(&key);
            let icb = [0x07u8; 16];
            let mut a: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
            let mut b = a.clone();
            hw.xor_ctr_keystream(&icb, &mut a);
            sw.xor_ctr_keystream(&icb, &mut b);
            assert_eq!(a, b, "key_len {key_len}");
        }
    }

    #[test]
    fn key_sizes_report_rounds() {
        assert_eq!(Aes::new(&[0u8; 16]).key_size(), KeySize::Aes128);
        assert_eq!(Aes::new(&[0u8; 24]).key_size(), KeySize::Aes192);
        assert_eq!(Aes::new(&[0u8; 32]).key_size(), KeySize::Aes256);
        assert_eq!(KeySize::Aes128.rounds(), 10);
        assert_eq!(KeySize::Aes192.rounds(), 12);
        assert_eq!(KeySize::Aes256.rounds(), 14);
        assert_eq!(KeySize::Aes256.key_len(), 32);
    }

    #[test]
    #[should_panic(expected = "unsupported AES key length")]
    fn rejects_bad_key_length() {
        let _ = Aes::new(&[0u8; 20]);
    }

    #[test]
    fn gf_mul_matches_known_products() {
        // {57} x {83} = {c1} from FIPS-197 Section 4.2.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        // {57} x {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x01, 0xab), 0xab);
        assert_eq!(gf_mul(0x00, 0xab), 0x00);
    }
}
