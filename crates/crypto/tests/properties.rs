//! Property-based tests for the AEAD and its field arithmetic.

use eag_crypto::ghash::{gf128_mul_soft, GHash};
use eag_crypto::{
    open_message, open_message_in_place, seal_message, seal_message_into, AesGcm128, CipherSuite,
    Key, Nonce, NonceSource, NONCE_LEN, TAG_LEN, WIRE_OVERHEAD,
};
use proptest::prelude::*;

fn arb_suite() -> impl Strategy<Value = CipherSuite> {
    (0usize..CipherSuite::ALL.len()).prop_map(|i| CipherSuite::ALL[i])
}

fn arb_key() -> impl Strategy<Value = Key> {
    any::<[u8; 16]>().prop_map(Key::from_bytes)
}

fn arb_nonce() -> impl Strategy<Value = Nonce> {
    any::<[u8; 12]>().prop_map(Nonce::from_bytes)
}

proptest! {
    /// seal → open is the identity for any key, nonce, AAD, and plaintext.
    #[test]
    fn seal_open_roundtrip(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let gcm = AesGcm128::new(&key);
        let sealed = gcm.seal(&nonce, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + 16);
        let opened = gcm.open(&nonce, &aad, &sealed).unwrap();
        prop_assert_eq!(opened, pt);
    }

    /// Flipping any single bit anywhere in the sealed frame is detected.
    #[test]
    fn any_single_bitflip_is_rejected(
        key in arb_key(),
        nonce in arb_nonce(),
        pt in proptest::collection::vec(any::<u8>(), 1..128),
        byte_sel in any::<usize>(),
        bit in 0u8..8,
    ) {
        let gcm = AesGcm128::new(&key);
        let mut sealed = gcm.seal(&nonce, b"aad", &pt);
        let idx = byte_sel % sealed.len();
        sealed[idx] ^= 1 << bit;
        prop_assert!(gcm.open(&nonce, b"aad", &sealed).is_err());
    }

    /// The framed message format roundtrips and carries exactly +28 bytes.
    #[test]
    fn framed_message_roundtrip(
        key in arb_key(),
        seed in any::<u64>(),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let gcm = AesGcm128::new(&key);
        let mut src = NonceSource::seeded(seed);
        let wire = seal_message(&gcm, &mut src, b"", &pt);
        prop_assert_eq!(wire.len(), pt.len() + 28);
        prop_assert_eq!(open_message(&gcm, b"", &wire).unwrap(), pt);
    }

    /// Two different plaintexts never seal to the same frame (under one
    /// nonce), and ciphertext differs from plaintext.
    #[test]
    fn sealing_is_injective(
        key in arb_key(),
        nonce in arb_nonce(),
        a in proptest::collection::vec(any::<u8>(), 1..64),
        b in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let gcm = AesGcm128::new(&key);
        let sa = gcm.seal(&nonce, b"", &a);
        let sb = gcm.seal(&nonce, b"", &b);
        if a == b {
            prop_assert_eq!(sa, sb);
        } else {
            prop_assert_ne!(sa, sb);
        }
    }

    /// GF(2^128): commutativity, and the hardware path agrees with soft.
    #[test]
    fn gf128_mul_commutes(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(gf128_mul_soft(a, b), gf128_mul_soft(b, a));
    }

    /// GF(2^128) distributes over XOR (addition in the field).
    #[test]
    fn gf128_mul_distributes(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        prop_assert_eq!(
            gf128_mul_soft(a ^ b, c),
            gf128_mul_soft(a, c) ^ gf128_mul_soft(b, c)
        );
    }

    /// GF(2^128) is associative.
    #[test]
    fn gf128_mul_associates(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        prop_assert_eq!(
            gf128_mul_soft(gf128_mul_soft(a, b), c),
            gf128_mul_soft(a, gf128_mul_soft(b, c))
        );
    }

    /// The GHASH bulk path equals the reference for arbitrary data.
    #[test]
    fn ghash_fast_equals_soft(
        h in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut fast = GHash::new(&h);
        let mut soft = GHash::new_soft(&h);
        fast.update_padded(&data);
        soft.update_padded(&data);
        prop_assert_eq!(fast.finalize(), soft.finalize());
    }

    /// In-place seal equals the allocating seal bit for bit, and in-place
    /// open inverts it — across the 128-byte fused-stride boundary.
    #[test]
    fn in_place_seal_open_matches_allocating(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in proptest::collection::vec(any::<u8>(), 0..48),
        pt in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let gcm = AesGcm128::new(&key);
        let reference = gcm.seal(&nonce, &aad, &pt);

        let mut buf = pt.clone();
        let tag = gcm.seal_in_place_detached(&nonce, &aad, &mut buf);
        prop_assert_eq!(&buf[..], &reference[..pt.len()]);
        prop_assert_eq!(&tag[..], &reference[pt.len()..]);

        gcm.open_in_place_detached(&nonce, &aad, &mut buf, &tag).unwrap();
        prop_assert_eq!(buf, pt);
    }

    /// A tampered in-place frame is rejected *and* the buffer is zeroed, so
    /// unauthenticated plaintext never escapes the failed open.
    #[test]
    fn in_place_open_zeroizes_on_tamper(
        key in arb_key(),
        nonce in arb_nonce(),
        pt in proptest::collection::vec(any::<u8>(), 1..300),
        byte_sel in any::<usize>(),
        bit in 0u8..8,
    ) {
        let gcm = AesGcm128::new(&key);
        let mut buf = pt.clone();
        let mut tag = gcm.seal_in_place_detached(&nonce, b"aad", &mut buf);
        // Flip one bit somewhere in ciphertext || tag.
        let idx = byte_sel % (buf.len() + TAG_LEN);
        if idx < buf.len() {
            buf[idx] ^= 1 << bit;
        } else {
            tag[idx - buf.len()] ^= 1 << bit;
        }
        prop_assert!(gcm.open_in_place_detached(&nonce, b"aad", &mut buf, &tag).is_err());
        prop_assert!(buf.iter().all(|&b| b == 0), "failed open must zeroize");
    }

    /// The scratch-reusing wire framing equals [`seal_message`]'s output and
    /// opens in place back to the plaintext, whatever the buffer held before.
    #[test]
    fn framed_in_place_roundtrip_reuses_scratch(
        key in arb_key(),
        seed in any::<u64>(),
        pt in proptest::collection::vec(any::<u8>(), 0..400),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let gcm = AesGcm128::new(&key);

        let mut src_a = NonceSource::seeded(seed);
        let reference = seal_message(&gcm, &mut src_a, b"hdr", &pt);

        let mut src_b = NonceSource::seeded(seed);
        let mut wire = junk; // scratch with arbitrary prior contents
        seal_message_into(&gcm, &mut src_b, b"hdr", &pt, &mut wire);
        prop_assert_eq!(&wire, &reference);
        prop_assert_eq!(wire.len(), pt.len() + WIRE_OVERHEAD);
        prop_assert_eq!(&wire[..NONCE_LEN], &reference[..NONCE_LEN]);

        open_message_in_place(&gcm, b"hdr", &mut wire).unwrap();
        prop_assert_eq!(wire, pt);
    }

    /// Every backend behind the [`Aead`] trait roundtrips any key, nonce,
    /// AAD, and plaintext — the cross-backend analogue of
    /// [`seal_open_roundtrip`].
    ///
    /// [`Aead`]: eag_crypto::Aead
    #[test]
    fn every_backend_roundtrips(
        suite in arb_suite(),
        key in arb_key(),
        nonce in arb_nonce(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let aead = suite.aead_for_key(&key);
        let mut buf = pt.clone();
        let tag = aead.seal_in_place_detached(&nonce, &aad, &mut buf);
        if !pt.is_empty() {
            prop_assert_ne!(&buf, &pt);
        }
        aead.open_in_place_detached(&nonce, &aad, &mut buf, &tag).unwrap();
        prop_assert_eq!(buf, pt);
    }

    /// Flipping any single bit of any backend's ciphertext or tag is
    /// rejected, and the failed open never exposes plaintext: per the trait
    /// contract the buffer afterwards is either all zeros (suites that must
    /// decrypt before verifying) or the untouched tampered ciphertext
    /// (ChaCha20-Poly1305, which verifies first).
    #[test]
    fn every_backend_rejects_any_bitflip(
        suite in arb_suite(),
        key in arb_key(),
        nonce in arb_nonce(),
        pt in proptest::collection::vec(any::<u8>(), 1..256),
        byte_sel in any::<usize>(),
        bit in 0u8..8,
    ) {
        let aead = suite.aead_for_key(&key);
        let mut buf = pt.clone();
        let mut tag = aead.seal_in_place_detached(&nonce, b"aad", &mut buf);
        let tampered = buf.clone();
        let idx = byte_sel % (buf.len() + TAG_LEN);
        if idx < buf.len() {
            buf[idx] ^= 1 << bit;
        } else {
            tag[idx - buf.len()] ^= 1 << bit;
        }
        let tampered = if idx < buf.len() { buf.clone() } else { tampered };
        prop_assert!(
            aead.open_in_place_detached(&nonce, b"aad", &mut buf, &tag).is_err(),
            "{} accepted a tampered frame", suite
        );
        let zeroized = buf.iter().all(|&b| b == 0);
        let untouched = buf == tampered;
        prop_assert!(zeroized || untouched, "failed open leaked state");
    }

    /// The dispatched (possibly SIMD) construction and the forced-soft
    /// construction of every suite produce bit-identical frames and agree on
    /// what opens. On hardware without the relevant CPU features both sides
    /// are soft and the test is trivially true; on hardware with them it
    /// pins the accelerated path to the portable reference.
    #[test]
    fn dispatch_and_soft_produce_identical_frames(
        suite in arb_suite(),
        key in arb_key(),
        nonce in arb_nonce(),
        aad in proptest::collection::vec(any::<u8>(), 0..48),
        pt in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let fast = suite.aead_for_key(&key);
        let soft = suite.aead_for_key_soft(&key);

        let mut fast_buf = pt.clone();
        let fast_tag = fast.seal_in_place_detached(&nonce, &aad, &mut fast_buf);
        let mut soft_buf = pt.clone();
        let soft_tag = soft.seal_in_place_detached(&nonce, &aad, &mut soft_buf);
        prop_assert_eq!(&fast_buf, &soft_buf);
        prop_assert_eq!(&fast_tag[..], &soft_tag[..]);

        // Cross-open: soft opens the dispatched frame and vice versa.
        let mut cross = fast_buf.clone();
        soft.open_in_place_detached(&nonce, &aad, &mut cross, &fast_tag).unwrap();
        prop_assert_eq!(&cross, &pt);
        let mut cross = soft_buf;
        fast.open_in_place_detached(&nonce, &aad, &mut cross, &soft_tag).unwrap();
        prop_assert_eq!(&cross, &pt);
    }

    /// One suite's frame never opens under another suite with the same key
    /// and nonce: the suites are mutually unintelligible, so a
    /// misconfigured world cannot silently accept foreign ciphertext.
    #[test]
    fn suites_never_cross_open(
        key in arb_key(),
        nonce in arb_nonce(),
        pt in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        for sealer in CipherSuite::ALL {
            let seal_aead = sealer.aead_for_key(&key);
            let mut ct = pt.clone();
            let tag = seal_aead.seal_in_place_detached(&nonce, b"", &mut ct);
            for opener in CipherSuite::ALL {
                if opener == sealer {
                    continue;
                }
                let open_aead = opener.aead_for_key(&key);
                let mut buf = ct.clone();
                prop_assert!(
                    open_aead.open_in_place_detached(&nonce, b"", &mut buf, &tag).is_err(),
                    "{} opened a {} frame", opener, sealer
                );
            }
        }
    }
}
