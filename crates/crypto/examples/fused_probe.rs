//! Quick timing probe for the fused vs two-sweep data paths.
//! `cargo run --release -p eag-crypto --example fused_probe`

use eag_crypto::ghash::GHash;
use eag_crypto::{Aes128, AesGcm128, Key, Nonce};
use std::hint::black_box;
use std::time::Instant;

fn gibs(bytes: usize, iters: u32, secs: f64) -> f64 {
    (bytes as f64 * iters as f64) / secs / (1u64 << 30) as f64
}

fn main() {
    let key = [7u8; 16];
    let aes = Aes128::new(&key);
    let mut h = [0u8; 16];
    aes.encrypt_block(&mut h);
    let proto = GHash::new(&h);
    let gcm = AesGcm128::new(&Key::from_bytes(key));
    let nonce = Nonce::from_bytes([1u8; 12]);
    let icb = [2u8; 16];

    for &size in &[65536usize, 1 << 20] {
        let data = vec![0xA5u8; size];
        let mut buf = data.clone();
        let iters = (1 << 28) / size as u32;

        // best-of-5 to shrug off scheduler noise
        let mut best = [f64::INFINITY; 5];
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                buf.copy_from_slice(&data);
                aes.xor_ctr_keystream(&icb, &mut buf);
                black_box(&buf);
            }
            best[0] = best[0].min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for _ in 0..iters {
                let mut g = proto.fresh();
                g.update_padded(&buf);
                black_box(g.finalize());
            }
            best[1] = best[1].min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for _ in 0..iters {
                buf.copy_from_slice(&data);
                aes.xor_ctr_keystream(&icb, &mut buf);
                let mut g = proto.fresh();
                g.update_padded(&buf);
                black_box(g.finalize());
            }
            best[2] = best[2].min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            for _ in 0..iters {
                buf.copy_from_slice(&data);
                black_box(gcm.seal_in_place_detached(&nonce, b"", &mut buf));
            }
            best[3] = best[3].min(t.elapsed().as_secs_f64());

            // Seed-equivalent data path: allocating seal with a per-block
            // (unaggregated) GHASH sweep.
            let t = Instant::now();
            for _ in 0..iters {
                let mut ct = data.clone();
                aes.xor_ctr_keystream(&icb, &mut ct);
                let mut g = proto.fresh();
                for block in ct.chunks_exact(16) {
                    g.update_block(block.try_into().unwrap());
                }
                black_box(g.finalize());
                black_box(ct);
            }
            best[4] = best[4].min(t.elapsed().as_secs_f64());
        }
        println!(
            "{size:>8}B  ctr {:.2}  ghash {:.2}  two_sweep {:.2}  fused_seal {:.2}  seed_seal {:.2}  GiB/s",
            gibs(size, iters, best[0]),
            gibs(size, iters, best[1]),
            gibs(size, iters, best[2]),
            gibs(size, iters, best[3]),
            gibs(size, iters, best[4]),
        );
    }
}
