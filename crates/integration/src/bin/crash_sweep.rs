//! Crash sweep: every encrypted algorithm × every rank × several phase
//! steps (crash-before and crash-after-send), at p = 6 over 2 nodes.
//!
//! Each cell injects one rank crash into a crash-tolerant all-gather
//! (`recover_allgather`) and checks the survivor contract: zero hangs, all
//! survivors agree on the failed set, and every survivor returns the
//! byte-identical degraded output. A crash planned at a send step the rank
//! never reaches must leave a clean, complete run instead.
//!
//! Prints one markdown matrix per algorithm (`R` recovered, `·` crash never
//! fired, `X` contract violated) plus a summary table, and exits non-zero
//! on any violation. CI runs this with `--features chaos`.
//!
//! Usage: `cargo run --release -p eag-integration --features chaos --bin crash_sweep [seed]`
//! (the seed feeds the fault plan for reproducibility bookkeeping; crash
//! injection itself is fully determined by the rank and step).

use eag_core::Algorithm;
use eag_integration::{crash_run, render_crash_markdown_table, CrashRunReport};
use eag_netsim::Crash;

const P: usize = 6;
const NODES: usize = 2;
const M: usize = 64;
/// Send steps the sweep crashes at (crash-before).
const STEPS: [u64; 3] = [0, 1, 2];

fn variants(rank: usize) -> Vec<(Crash, String)> {
    let mut v: Vec<(Crash, String)> = STEPS
        .iter()
        .map(|&s| (Crash::before(rank, s), format!("b{s}")))
        .collect();
    // One after-send variant: the dying rank's final frame is delivered.
    v.push((Crash::after(rank, 0), "a0".to_string()));
    v
}

fn main() {
    // The happy path unwinds every fired crash through panic machinery;
    // keep the recovered ones out of the logs.
    eag_runtime::quiet_expected_panics();
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| {
            a.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| a.parse())
                .expect("seed is u64 (decimal or 0x-hex)")
        })
        .unwrap_or(0xC0FFEE);

    println!("# Crash sweep: p={P}, {NODES} nodes, m={M} B, seed {seed:#x}\n");
    let mut all: Vec<CrashRunReport> = Vec::new();
    let mut ok = true;
    for &algo in Algorithm::encrypted_all() {
        println!("### {algo}\n");
        println!(
            "| rank | {} |",
            variants(0)
                .iter()
                .map(|(_, l)| l.clone())
                .collect::<Vec<_>>()
                .join(" | ")
        );
        println!("|---|{}", "---|".repeat(variants(0).len()));
        for rank in 0..P {
            let mut cells = Vec::new();
            for (crash, _) in variants(rank) {
                let r = crash_run(algo, P, NODES, M, crash);
                cells.push(match (r.ok(), r.fired) {
                    (true, true) => "R",
                    (true, false) => "·",
                    (false, _) => "X",
                });
                ok &= r.ok();
                all.push(r);
            }
            println!("| {rank} | {} |", cells.join(" | "));
        }
        println!();
    }

    println!("### summary\n");
    println!("{}", render_crash_markdown_table(&all));
    let fired = all.iter().filter(|r| r.fired).count();
    let recovered = all.iter().filter(|r| r.fired && r.ok()).count();
    println!(
        "{} — {recovered}/{fired} fired crashes recovered across {} runs\n",
        if ok { "all survived" } else { "FAILURES" },
        all.len()
    );
    if !ok {
        eprintln!("crash sweep found recovery-contract violations");
        std::process::exit(1);
    }
}
