//! Crash sweep: multi-crash recovery across every encrypted algorithm at
//! p = 6 over 2 nodes.
//!
//! `f = 1` sweeps every rank × several phase steps (crash-before and
//! crash-after-send), one crash per run — the original single-failure
//! matrix. `f = 2` and `f = 3` sweep seed-derived crash *schedules* of f
//! distinct ranks; half the schedules arm their last crash inside the
//! first agreement instance (`at_epoch(1)`), so the sweep always
//! exercises crashes that land mid-agreement, and those armed crashes are
//! required to fire.
//!
//! Each cell runs a crash-tolerant all-gather (`recover_allgather`) and
//! checks the survivor contract: zero hangs, all survivors agree on one
//! failed set naming only real crashes, and every survivor returns the
//! byte-identical degraded output. A crash planned at a send step its
//! rank never reaches must leave a clean, complete run instead.
//!
//! Prints one markdown matrix per algorithm (`R` recovered, `·` no crash
//! fired, `X` contract violated) plus a summary table, and exits non-zero
//! on any violation. CI runs this with `--features chaos` for each
//! f ∈ {1, 2, 3}.
//!
//! Usage: `cargo run --release -p eag-integration --features chaos --bin crash_sweep [seed] [f]`
//! (the seed derives the f ≥ 2 schedules, so a sweep is replayed exactly
//! by rerunning with the same seed; f defaults to 1).

use eag_core::Algorithm;
use eag_integration::{crash_run, crash_schedule_run, render_crash_markdown_table, CrashRunReport};
use eag_netsim::Crash;

const P: usize = 6;
const NODES: usize = 2;
const M: usize = 64;
/// Send steps the f=1 sweep crashes at (crash-before).
const STEPS: [u64; 3] = [0, 1, 2];
/// Crash schedules per algorithm in the f ≥ 2 sweeps.
const SCHEDULES: usize = 6;

fn variants(rank: usize) -> Vec<(Crash, String)> {
    let mut v: Vec<(Crash, String)> = STEPS
        .iter()
        .map(|&s| (Crash::before(rank, s), format!("b{s}")))
        .collect();
    // One after-send variant: the dying rank's final frame is delivered.
    v.push((Crash::after(rank, 0), "a0".to_string()));
    v
}

/// splitmix64 — the deterministic stream all f ≥ 2 schedules draw from.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn label(c: &Crash) -> String {
    format!(
        "{}{}@{}{}",
        if c.after_send { "a" } else { "b" },
        c.rank,
        c.phase_step,
        if c.epoch > 0 {
            format!("e{}", c.epoch)
        } else {
            String::new()
        }
    )
}

/// Builds the i-th crash schedule of `f` distinct ranks for one algorithm.
/// Odd-indexed schedules arm their last crash at epoch 1 step 0 — inside
/// round 0 of the first agreement instance, where every live rank sends —
/// so that crash is guaranteed to fire mid-agreement.
fn schedule(state: &mut u64, f: usize, i: usize) -> Vec<Crash> {
    let mut ranks: Vec<usize> = (0..P).collect();
    let mut crashes = Vec::with_capacity(f);
    for k in 0..f {
        let j = (splitmix(state) as usize) % ranks.len();
        let rank = ranks.swap_remove(j);
        if k == f - 1 && i % 2 == 1 {
            crashes.push(Crash::before(rank, 0).at_epoch(1));
            continue;
        }
        let step = splitmix(state) % 3;
        let c = if splitmix(state) % 2 == 1 {
            Crash::after(rank, step)
        } else {
            Crash::before(rank, step)
        };
        crashes.push(c);
    }
    crashes
}

fn sweep_single(all: &mut Vec<CrashRunReport>) -> bool {
    let mut ok = true;
    for &algo in Algorithm::encrypted_all() {
        println!("### {algo}\n");
        println!(
            "| rank | {} |",
            variants(0)
                .iter()
                .map(|(_, l)| l.clone())
                .collect::<Vec<_>>()
                .join(" | ")
        );
        println!("|---|{}", "---|".repeat(variants(0).len()));
        for rank in 0..P {
            let mut cells = Vec::new();
            for (crash, _) in variants(rank) {
                let r = crash_run(algo, P, NODES, M, crash);
                cells.push(match (r.ok(), r.fired) {
                    (true, true) => "R",
                    (true, false) => "·",
                    (false, _) => "X",
                });
                ok &= r.ok();
                all.push(r);
            }
            println!("| {rank} | {} |", cells.join(" | "));
        }
        println!();
    }
    ok
}

fn sweep_multi(seed: u64, f: usize, all: &mut Vec<CrashRunReport>) -> bool {
    let mut ok = true;
    for (algo_ix, &algo) in Algorithm::encrypted_all().iter().enumerate() {
        let mut state = seed ^ (algo_ix as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
        println!("### {algo}\n");
        println!("| schedule | crashes | survivors | result |");
        println!("|---|---|---:|---|");
        for i in 0..SCHEDULES {
            let crashes = schedule(&mut state, f, i);
            let desc = crashes.iter().map(label).collect::<Vec<_>>().join(", ");
            let r = crash_schedule_run(algo, P, NODES, M, crashes.clone());
            let mut cell = match (r.ok(), r.fired) {
                (true, true) => "R",
                (true, false) => "·",
                (false, _) => "X",
            };
            // An epoch-1 crash is armed inside agreement round 0, where
            // every live rank sends: it must have fired.
            for c in crashes.iter().filter(|c| c.epoch > 0) {
                if !r.crashed.contains(&c.rank) {
                    cell = "X";
                    eprintln!(
                        "{algo} schedule {i}: agreement-round crash on rank {} never fired",
                        c.rank
                    );
                }
            }
            ok &= cell != "X";
            println!("| {i} | {desc} | {} | {cell} |", r.survivors);
            all.push(r);
        }
        println!();
    }
    ok
}

fn main() {
    // The happy path unwinds every fired crash through panic machinery;
    // keep the recovered ones out of the logs.
    eag_runtime::quiet_expected_panics();
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| {
            a.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| a.parse())
                .expect("seed is u64 (decimal or 0x-hex)")
        })
        .unwrap_or(0xC0FFEE);
    let f: usize = args
        .next()
        .map(|a| a.parse().expect("f is 1, 2, or 3"))
        .unwrap_or(1);
    assert!((1..=3).contains(&f), "fault bound f must be 1, 2, or 3");

    println!("# Crash sweep: p={P}, {NODES} nodes, m={M} B, f={f}, seed {seed:#x}\n");
    let mut all: Vec<CrashRunReport> = Vec::new();
    let ok = if f == 1 {
        sweep_single(&mut all)
    } else {
        sweep_multi(seed, f, &mut all)
    };

    println!("### summary\n");
    println!("{}", render_crash_markdown_table(&all));
    let fired = all.iter().filter(|r| r.fired).count();
    let recovered = all.iter().filter(|r| r.fired && r.ok()).count();
    println!(
        "{} — {recovered}/{fired} fired crashes recovered across {} runs\n",
        if ok { "all survived" } else { "FAILURES" },
        all.len()
    );
    if !ok {
        eprintln!("crash sweep found recovery-contract violations");
        std::process::exit(1);
    }
}
