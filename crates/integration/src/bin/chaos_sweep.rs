//! Chaos sweep: every encrypted algorithm × every fault kind × a set of
//! seeds, plus the canonical drop+tamper mix, at p = 16 over 8 nodes.
//!
//! Prints one markdown table per configuration and exits non-zero if any
//! cell is not byte-identical to its fault-free reference. CI runs this at
//! a fixed seed (`--features chaos`).
//!
//! Usage: `cargo run --release -p eag-integration --features chaos --bin chaos_sweep [seeds...]`

use eag_core::Algorithm;
use eag_integration::{chaos_run, render_markdown_table, ChaosReport};
use eag_netsim::{FaultKind, FaultPlan};

const P: usize = 16;
const NODES: usize = 8;
const M: usize = 128;
/// Per-kind injection rate for the single-kind sweeps, ‰.
const PERMILLE: u16 = 20;

fn sweep(label: &str, plan: FaultPlan) -> (Vec<ChaosReport>, bool) {
    let rows: Vec<ChaosReport> = Algorithm::encrypted_all()
        .iter()
        .map(|&algo| chaos_run(algo, P, NODES, M, plan.clone()))
        .collect();
    let all_ok = rows.iter().all(|r| r.byte_identical);
    let injected: u64 = rows.iter().map(|r| r.faults_injected).sum();
    println!("### {label}\n");
    println!("{}", render_markdown_table(&rows));
    println!(
        "{} — {} faults injected across {} algorithms\n",
        if all_ok { "all recovered" } else { "FAILURES" },
        injected,
        rows.len()
    );
    (rows, all_ok)
}

/// Wall-clock cost of the reliability framing itself: runs every encrypted
/// algorithm with framing armed at zero fault rates vs. fully disabled and
/// reports the overhead on the best-of-`reps` totals. With the plan fully
/// disabled the framing code is bypassed entirely (zero overhead); the
/// armed-at-zero figure is the stricter bound, dominated by fixed per-run
/// costs at small m and amortized away at larger blocks.
fn framing_overhead(reps: u32) {
    println!("### framing overhead (faults disabled)\n");
    for m in [M, 16 * 1024] {
        let time_all = |plan: FaultPlan| -> std::time::Duration {
            (0..reps)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    for &algo in Algorithm::encrypted_all() {
                        let r = chaos_run(algo, P, NODES, m, plan.clone());
                        assert!(r.byte_identical, "{algo} diverged with no faults");
                    }
                    t0.elapsed()
                })
                .min()
                .unwrap()
        };
        let disabled = time_all(FaultPlan::default());
        let armed = time_all(FaultPlan {
            armed: true,
            ..FaultPlan::default()
        });
        let pct = 100.0 * (armed.as_secs_f64() / disabled.as_secs_f64() - 1.0);
        println!(
            "m = {m} B: armed-at-zero-rates {:.1} ms vs disabled {:.1} ms over {} encrypted algorithms: {pct:+.1}%",
            armed.as_secs_f64() * 1e3,
            disabled.as_secs_f64() * 1e3,
            Algorithm::encrypted_all().len()
        );
    }
    println!();
}

fn main() {
    let seeds: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| {
            a.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| a.parse())
                .expect("seeds are u64 (decimal or 0x-hex)")
        })
        .collect();
    let seeds = if seeds.is_empty() {
        vec![0xC0FFEE]
    } else {
        seeds
    };

    println!("# Chaos sweep: p={P}, {NODES} nodes, m={M} B\n");
    let mut ok = true;
    for &seed in &seeds {
        println!("## seed {seed:#x}\n");
        for &kind in FaultKind::all() {
            let (_, all_ok) = sweep(
                &format!("{} at {PERMILLE}‰", kind.label()),
                FaultPlan::only(kind, PERMILLE, seed),
            );
            ok &= all_ok;
        }
        let (_, all_ok) = sweep(
            "drop 10‰ + tamper 10‰ (canonical mix)",
            FaultPlan::drop_and_tamper(10, 10, seed),
        );
        ok &= all_ok;
        let mut adv = FaultPlan::only(FaultKind::Tamper, PERMILLE, seed);
        adv.adversarial_tamper = true;
        let (_, all_ok) = sweep("adversarial tamper at 20‰ (checksum-evading)", adv);
        ok &= all_ok;
    }
    framing_overhead(9);
    if !ok {
        eprintln!("chaos sweep found unrecovered faults");
        std::process::exit(1);
    }
}
