//! # eag-integration — workspace-spanning tests and the chaos harness
//!
//! The crate's `[[test]]` targets (under the repository's `tests/`) exercise
//! correctness, security, metrics, bounds, and tracing across every crate.
//! The library itself hosts the **chaos harness**: helpers that run an
//! all-gather under a deterministic [`FaultPlan`] and check that the
//! recovered result is byte-identical to a fault-free run of the same
//! algorithm.
//!
//! The `chaos_sweep` binary (gated behind the `chaos` cargo feature) sweeps
//! algorithms × fault kinds × seeds and renders the results as a markdown
//! table; CI runs it at a fixed seed.

#![deny(missing_docs)]

use eag_core::{allgather, Algorithm};
use eag_netsim::{profile, FaultPlan, Mapping, Topology};
use eag_runtime::{try_run, CollectiveError, DataMode, Metrics, RetryPolicy, RunReport, WorldSpec};
use std::time::Duration;

/// The data-pattern seed every chaos run uses (distinct from fault seeds).
pub const DATA_SEED: u64 = 7;

/// The outcome of one all-gather under fault injection, compared against a
/// fault-free reference run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The algorithm exercised.
    pub algo: Algorithm,
    /// The collective completed and every rank's gathered bytes are
    /// identical to the fault-free reference.
    pub byte_identical: bool,
    /// The structured failure, if the collective aborted.
    pub error: Option<CollectiveError>,
    /// Faults injected, summed over ranks.
    pub faults_injected: u64,
    /// Corrupted/missing frames detected on arrival, summed over ranks.
    pub faults_detected: u64,
    /// Recovery actions (NACKs + retransmissions), summed over ranks.
    pub retries: u64,
    /// Duplicate frames discarded by sequence-number dedup, summed.
    pub dup_frames_dropped: u64,
    /// Wire bytes retransmitted (excluded from the Table II columns).
    pub retransmit_bytes: u64,
    /// Simulated latency of the faulted run, µs (faults do not perturb the
    /// virtual-time model except for injected delays).
    pub latency_us: f64,
}

/// Builds the world spec used by chaos runs: `p` ranks over `nodes` nodes,
/// real data, the free-cost profile (chaos is about wall-clock recovery,
/// not virtual-time pricing).
pub fn chaos_spec(p: usize, nodes: usize, plan: FaultPlan) -> WorldSpec {
    let mut spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::free(),
        DataMode::Real { seed: DATA_SEED },
    );
    spec.faults = plan;
    spec.retry = RetryPolicy {
        attempt_timeout: Duration::from_millis(20),
        max_attempts: 10,
        backoff: 1.5,
    };
    spec.recv_timeout = Some(Duration::from_secs(60));
    spec
}

/// Runs `algo` on `p` ranks / `nodes` nodes with `m`-byte blocks and
/// returns every rank's gathered bytes, or the structured error.
fn gather_bytes(
    spec: &WorldSpec,
    algo: Algorithm,
    m: usize,
) -> Result<RunReport<Vec<Vec<u8>>>, CollectiveError> {
    try_run(spec, move |ctx| {
        allgather(ctx, algo, m)
            .into_blocks()
            .into_iter()
            .map(|b| b.data.bytes().to_vec())
            .collect()
    })
}

/// Runs `algo` under `plan` and compares the result byte-for-byte against a
/// fault-free run of the same algorithm on the same inputs.
pub fn chaos_run(
    algo: Algorithm,
    p: usize,
    nodes: usize,
    m: usize,
    plan: FaultPlan,
) -> ChaosReport {
    let clean = gather_bytes(&chaos_spec(p, nodes, FaultPlan::default()), algo, m)
        .unwrap_or_else(|e| panic!("{algo}: fault-free reference failed: {e}"));
    match gather_bytes(&chaos_spec(p, nodes, plan), algo, m) {
        Ok(report) => {
            let sum = Metrics::component_sum(&report.metrics);
            ChaosReport {
                algo,
                byte_identical: report.outputs == clean.outputs,
                error: None,
                faults_injected: sum.faults_injected,
                faults_detected: sum.faults_detected,
                retries: sum.retries(),
                dup_frames_dropped: sum.dup_frames_dropped,
                retransmit_bytes: sum.retransmit_bytes,
                latency_us: report.latency_us,
            }
        }
        Err(error) => ChaosReport {
            algo,
            byte_identical: false,
            error: Some(error),
            faults_injected: 0,
            faults_detected: 0,
            retries: 0,
            dup_frames_dropped: 0,
            retransmit_bytes: 0,
            latency_us: 0.0,
        },
    }
}

/// Renders chaos reports as a GitHub-flavored markdown table (the format
/// embedded in `EXPERIMENTS.md`).
pub fn render_markdown_table(rows: &[ChaosReport]) -> String {
    let mut out = String::from(
        "| algorithm | recovered | injected | detected | retries | dup dropped |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for r in rows {
        let verdict = if r.byte_identical {
            "byte-identical".to_string()
        } else if let Some(e) = &r.error {
            format!("failed: {}", e.cause)
        } else {
            "WRONG BYTES".to_string()
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.algo, verdict, r.faults_injected, r.faults_detected, r.retries, r.dup_frames_dropped,
        ));
    }
    out
}
