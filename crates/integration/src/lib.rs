// placeholder
