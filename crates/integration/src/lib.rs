//! # eag-integration — workspace-spanning tests and the chaos harness
//!
//! The crate's `[[test]]` targets (under the repository's `tests/`) exercise
//! correctness, security, metrics, bounds, and tracing across every crate.
//! The library itself hosts the **chaos harness**: helpers that run an
//! all-gather under a deterministic [`FaultPlan`] and check that the
//! recovered result is byte-identical to a fault-free run of the same
//! algorithm.
//!
//! The `chaos_sweep` binary (gated behind the `chaos` cargo feature) sweeps
//! algorithms × fault kinds × seeds and renders the results as a markdown
//! table; CI runs it at a fixed seed.

#![deny(missing_docs)]

use eag_core::{allgather, recover_allgather, Algorithm, Collective};
use eag_netsim::{profile, Crash, FaultPlan, Mapping, Topology};
use eag_runtime::{
    try_run, try_run_crashable, CollectiveError, DataMode, Metrics, RetryPolicy, RunReport,
    WorldSpec,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// The data-pattern seed every chaos run uses (distinct from fault seeds).
pub const DATA_SEED: u64 = 7;

/// The outcome of one all-gather under fault injection, compared against a
/// fault-free reference run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The algorithm exercised.
    pub algo: Algorithm,
    /// The collective completed and every rank's gathered bytes are
    /// identical to the fault-free reference.
    pub byte_identical: bool,
    /// The structured failure, if the collective aborted.
    pub error: Option<CollectiveError>,
    /// Faults injected, summed over ranks.
    pub faults_injected: u64,
    /// Corrupted/missing frames detected on arrival, summed over ranks.
    pub faults_detected: u64,
    /// Recovery actions (NACKs + retransmissions), summed over ranks.
    pub retries: u64,
    /// Duplicate frames discarded by sequence-number dedup, summed.
    pub dup_frames_dropped: u64,
    /// Wire bytes retransmitted (excluded from the Table II columns).
    pub retransmit_bytes: u64,
    /// Simulated latency of the faulted run, µs (faults do not perturb the
    /// virtual-time model except for injected delays).
    pub latency_us: f64,
}

/// Builds the world spec used by chaos runs: `p` ranks over `nodes` nodes,
/// real data, the free-cost profile (chaos is about wall-clock recovery,
/// not virtual-time pricing).
pub fn chaos_spec(p: usize, nodes: usize, plan: FaultPlan) -> WorldSpec {
    let mut spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::free(),
        DataMode::Real { seed: DATA_SEED },
    );
    spec.faults = plan;
    spec.retry = RetryPolicy {
        attempt_timeout: Duration::from_millis(20),
        max_attempts: 10,
        backoff: 1.5,
    };
    spec.recv_timeout = Some(Duration::from_secs(60));
    spec
}

/// Runs `algo` on `p` ranks / `nodes` nodes with `m`-byte blocks and
/// returns every rank's gathered bytes, or the structured error.
fn gather_bytes(
    spec: &WorldSpec,
    algo: Algorithm,
    m: usize,
) -> Result<RunReport<Vec<Vec<u8>>>, CollectiveError> {
    try_run(spec, move |ctx| {
        allgather(ctx, algo, m)
            .into_blocks()
            .into_iter()
            .map(|b| b.data.to_vec())
            .collect()
    })
}

/// Runs `algo` under `plan` and compares the result byte-for-byte against a
/// fault-free run of the same algorithm on the same inputs.
pub fn chaos_run(
    algo: Algorithm,
    p: usize,
    nodes: usize,
    m: usize,
    plan: FaultPlan,
) -> ChaosReport {
    let clean = gather_bytes(&chaos_spec(p, nodes, FaultPlan::default()), algo, m)
        .unwrap_or_else(|e| panic!("{algo}: fault-free reference failed: {e}"));
    match gather_bytes(&chaos_spec(p, nodes, plan), algo, m) {
        Ok(report) => {
            let sum = Metrics::component_sum(&report.metrics);
            ChaosReport {
                algo,
                byte_identical: report.outputs == clean.outputs,
                error: None,
                faults_injected: sum.faults_injected,
                faults_detected: sum.faults_detected,
                retries: sum.retries(),
                dup_frames_dropped: sum.dup_frames_dropped,
                retransmit_bytes: sum.retransmit_bytes,
                latency_us: report.latency_us,
            }
        }
        Err(error) => ChaosReport {
            algo,
            byte_identical: false,
            error: Some(error),
            faults_injected: 0,
            faults_detected: 0,
            retries: 0,
            dup_frames_dropped: 0,
            retransmit_bytes: 0,
            latency_us: 0.0,
        },
    }
}

// ----- crash recovery harness -------------------------------------------

/// The outcome of one crash-tolerant all-gather under an injected crash
/// schedule, checked against the survivor-agreement contract.
#[derive(Debug, Clone)]
pub struct CrashRunReport {
    /// The algorithm exercised.
    pub algo: Algorithm,
    /// The injected crash schedule (see `FaultPlan::crashes`).
    pub crashes: Vec<Crash>,
    /// At least one planned crash actually fired (its target rank reached
    /// the armed send step in the armed membership epoch).
    pub fired: bool,
    /// Every survivor converged on the *identical* failed set, and that
    /// set only names ranks that really crashed. The decided set may be a
    /// strict subset of the crashed ranks: a victim that dies after the
    /// deciding agreement (or after contributing its block) is attributed
    /// like a post-collective death and stays out of the decision.
    pub agreed: bool,
    /// Every survivor's degraded output verified bit-exact against the
    /// input patterns and all canonical encodings are identical.
    pub byte_identical: bool,
    /// Number of surviving ranks.
    pub survivors: usize,
    /// The ranks that actually died during the run, ascending.
    pub crashed: Vec<usize>,
    /// Crash detections, summed over ranks (a cascade detects many times).
    pub crashes_detected: u64,
    /// Completed shrink-and-recover re-runs, summed over ranks.
    pub recoveries: u64,
    /// Simulated latency of a fault-free run of the same collective, µs.
    pub clean_latency_us: f64,
    /// Simulated latency of the crashed run (detection + agreement +
    /// degraded re-run), µs.
    pub latency_us: f64,
    /// The structured failure, if the world aborted instead of recovering.
    pub error: Option<CollectiveError>,
}

impl CrashRunReport {
    /// True when the run upheld the full recovery contract.
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.agreed && self.byte_identical
    }
}

/// Builds the world spec used by crash runs. Unlike [`chaos_spec`] this
/// prices virtual time (the noleland profile) so the recovery-latency
/// figures are meaningful, and arms exactly the planned crash schedule.
pub fn crash_schedule_spec(p: usize, nodes: usize, crashes: Vec<Crash>) -> WorldSpec {
    let mut spec = WorldSpec::new(
        Topology::new(p, nodes, Mapping::Block),
        profile::noleland(),
        DataMode::Real { seed: DATA_SEED },
    );
    spec.faults = FaultPlan {
        crashes,
        ..FaultPlan::default()
    };
    spec.retry = RetryPolicy {
        attempt_timeout: Duration::from_millis(20),
        max_attempts: 10,
        backoff: 1.5,
    };
    spec.recv_timeout = Some(Duration::from_secs(60));
    spec
}

/// Single-crash convenience wrapper over [`crash_schedule_spec`].
pub fn crash_spec(p: usize, nodes: usize, crash: Crash) -> WorldSpec {
    crash_schedule_spec(p, nodes, vec![crash])
}

/// Runs `recover_allgather` under an injected crash schedule and checks
/// the survivor-agreement contract: every survivor settles on the
/// *identical* failed set — a subset of the ranks that really crashed —
/// and returns the byte-identical degraded output. A crash whose armed
/// step its rank never reaches simply does not fire; with no fired crash
/// the run must complete cleanly at every rank.
pub fn crash_schedule_run(
    algo: Algorithm,
    p: usize,
    nodes: usize,
    m: usize,
    crashes: Vec<Crash>,
) -> CrashRunReport {
    let mut clean_spec = crash_schedule_spec(p, nodes, Vec::new());
    clean_spec.faults = FaultPlan::default();
    let clean = try_run(&clean_spec, move |ctx| {
        allgather(ctx, algo, m).verify(DATA_SEED);
    })
    .unwrap_or_else(|e| panic!("{algo}: fault-free reference failed: {e}"));

    let spec = crash_schedule_spec(p, nodes, crashes.clone());
    match try_run_crashable(&spec, move |ctx| recover_allgather(ctx, algo, m)) {
        Ok(report) => {
            let sum = Metrics::component_sum(&report.metrics);
            let mut agreed = true;
            let mut byte_identical = true;
            let mut canon: Option<Vec<u8>> = None;
            let mut decided: Option<Vec<usize>> = None;
            for (_, out) in report.survivor_outputs() {
                match &decided {
                    Some(d) => agreed &= &out.failed == d,
                    None => decided = Some(out.failed.clone()),
                }
                agreed &= out.failed.iter().all(|r| report.crashed.contains(r));
                byte_identical &= catch_unwind(AssertUnwindSafe(|| out.verify(DATA_SEED))).is_ok();
                let bytes = out.canonical_bytes();
                match &canon {
                    Some(c) => byte_identical &= c == &bytes,
                    None => canon = Some(bytes),
                }
            }
            CrashRunReport {
                algo,
                crashes,
                fired: !report.crashed.is_empty(),
                agreed,
                byte_identical,
                survivors: p - report.crashed.len(),
                crashed: report.crashed.clone(),
                crashes_detected: sum.crashes_detected,
                recoveries: sum.recoveries,
                clean_latency_us: clean.latency_us,
                latency_us: report.latency_us,
                error: None,
            }
        }
        Err(error) => CrashRunReport {
            algo,
            crashes,
            fired: false,
            agreed: false,
            byte_identical: false,
            survivors: 0,
            crashed: Vec::new(),
            crashes_detected: 0,
            recoveries: 0,
            clean_latency_us: clean.latency_us,
            latency_us: 0.0,
            error: Some(error),
        },
    }
}

/// Single-crash convenience wrapper over [`crash_schedule_run`].
pub fn crash_run(
    algo: Algorithm,
    p: usize,
    nodes: usize,
    m: usize,
    crash: Crash,
) -> CrashRunReport {
    crash_schedule_run(algo, p, nodes, m, vec![crash])
}

// ----- operation-generic harness ----------------------------------------

/// The outcome of one crash-tolerant collective (any operation) under an
/// injected crash schedule, checked against the operation's uniformity
/// contract: replicated operations must yield the byte-identical degraded
/// output at every survivor; rooted and personalized operations must agree
/// on the canonical *header* (failed set + epochs) while each survivor's
/// own output verifies bit-exact for its role.
#[derive(Debug, Clone)]
pub struct CollectiveCrashReport {
    /// The collective exercised.
    pub collective: Collective,
    /// At least one planned crash actually fired.
    pub fired: bool,
    /// Every survivor decided the identical failed set, naming only ranks
    /// that really crashed.
    pub agreed: bool,
    /// The per-operation uniformity contract held (canonical bytes for
    /// replicated operations, canonical header otherwise).
    pub uniform: bool,
    /// Every survivor's output verified bit-exact for its role.
    pub verified: bool,
    /// Number of surviving ranks.
    pub survivors: usize,
    /// The ranks that actually died during the run, ascending.
    pub crashed: Vec<usize>,
    /// Completed shrink-and-recover re-runs, summed over ranks.
    pub recoveries: u64,
    /// The structured failure, if the world aborted instead of recovering.
    pub error: Option<CollectiveError>,
}

impl CollectiveCrashReport {
    /// True when the run upheld the full per-operation recovery contract.
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.agreed && self.uniform && self.verified
    }
}

/// Runs `Collective::recover` under an injected crash schedule and checks
/// the per-operation recovery contract (see [`CollectiveCrashReport`]).
pub fn collective_crash_run(
    c: Collective,
    p: usize,
    nodes: usize,
    m: usize,
    crashes: Vec<Crash>,
) -> CollectiveCrashReport {
    let spec = crash_schedule_spec(p, nodes, crashes);
    match try_run_crashable(&spec, move |ctx| c.recover(ctx, m)) {
        Ok(report) => {
            let sum = Metrics::component_sum(&report.metrics);
            let replicated = c.operation().is_replicated();
            let mut agreed = true;
            let mut uniform = true;
            let mut verified = true;
            let mut canon: Option<Vec<u8>> = None;
            let mut decided: Option<Vec<usize>> = None;
            for (rank, out) in report.survivor_outputs() {
                match &decided {
                    Some(d) => agreed &= &out.failed == d,
                    None => decided = Some(out.failed.clone()),
                }
                agreed &= out.failed.iter().all(|r| report.crashed.contains(r));
                verified &= catch_unwind(AssertUnwindSafe(|| {
                    c.verify(rank, &out.output, DATA_SEED)
                }))
                .is_ok();
                let bytes = if replicated {
                    out.canonical_bytes()
                } else {
                    out.canonical_header()
                };
                match &canon {
                    Some(cb) => uniform &= cb == &bytes,
                    None => canon = Some(bytes),
                }
            }
            CollectiveCrashReport {
                collective: c,
                fired: !report.crashed.is_empty(),
                agreed,
                uniform,
                verified,
                survivors: p - report.crashed.len(),
                crashed: report.crashed.clone(),
                recoveries: sum.recoveries,
                error: None,
            }
        }
        Err(error) => CollectiveCrashReport {
            collective: c,
            fired: false,
            agreed: false,
            uniform: false,
            verified: false,
            survivors: 0,
            crashed: Vec::new(),
            recoveries: 0,
            error: Some(error),
        },
    }
}

/// Runs a collective under `plan` and compares every rank's delivered
/// blocks byte-for-byte against a fault-free run — the chaos contract,
/// generalized to any operation (each rank compares only the slots its
/// role delivers). Returns the faulted run's fault/retry counters.
pub fn collective_chaos_run(
    c: Collective,
    p: usize,
    nodes: usize,
    m: usize,
    plan: FaultPlan,
) -> ChaosReport {
    let deliver = move |ctx: &mut eag_runtime::ProcCtx| {
        let out = c.run(ctx, m);
        c.verify(ctx.rank(), &out, DATA_SEED);
        // Sparse outputs are legal (gather delivers only at the root,
        // scatter only the own slot): collect whatever this role holds.
        (0..out.p())
            .filter_map(|r| out.get(r).map(|b| (r, b.data.to_vec())))
            .collect::<Vec<_>>()
    };
    let clean = try_run(&chaos_spec(p, nodes, FaultPlan::default()), deliver)
        .unwrap_or_else(|e| panic!("{c}: fault-free reference failed: {e}"));
    let algo = Algorithm::ORing; // report carrier only; unused for non-allgather
    match try_run(&chaos_spec(p, nodes, plan), deliver) {
        Ok(report) => {
            let sum = Metrics::component_sum(&report.metrics);
            ChaosReport {
                algo,
                byte_identical: report.outputs == clean.outputs,
                error: None,
                faults_injected: sum.faults_injected,
                faults_detected: sum.faults_detected,
                retries: sum.retries(),
                dup_frames_dropped: sum.dup_frames_dropped,
                retransmit_bytes: sum.retransmit_bytes,
                latency_us: report.latency_us,
            }
        }
        Err(error) => ChaosReport {
            algo,
            byte_identical: false,
            error: Some(error),
            faults_injected: 0,
            faults_detected: 0,
            retries: 0,
            dup_frames_dropped: 0,
            retransmit_bytes: 0,
            latency_us: 0.0,
        },
    }
}

/// Renders crash-run reports as a per-algorithm summary table: how many
/// planned crashes fired, how many recovered correctly, and the mean
/// recovery-latency overhead versus the fault-free run (fired runs only).
pub fn render_crash_markdown_table(rows: &[CrashRunReport]) -> String {
    let mut out = String::from(
        "| algorithm | runs | fired | recovered | mean recovery latency vs clean |\n\
         |---|---:|---:|---:|---:|\n",
    );
    let mut algos: Vec<Algorithm> = Vec::new();
    for r in rows {
        if !algos.contains(&r.algo) {
            algos.push(r.algo);
        }
    }
    for algo in algos {
        let runs: Vec<&CrashRunReport> = rows.iter().filter(|r| r.algo == algo).collect();
        let fired: Vec<&&CrashRunReport> = runs.iter().filter(|r| r.fired).collect();
        let recovered = fired.iter().filter(|r| r.ok()).count();
        let ratio = if fired.is_empty() {
            "—".to_string()
        } else {
            let mean: f64 = fired
                .iter()
                .map(|r| r.latency_us / r.clean_latency_us)
                .sum::<f64>()
                / fired.len() as f64;
            format!("{mean:.2}x")
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            algo,
            runs.len(),
            fired.len(),
            recovered,
            ratio,
        ));
    }
    out
}

/// Renders chaos reports as a GitHub-flavored markdown table (the format
/// embedded in `EXPERIMENTS.md`).
pub fn render_markdown_table(rows: &[ChaosReport]) -> String {
    let mut out = String::from(
        "| algorithm | recovered | injected | detected | retries | dup dropped |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for r in rows {
        let verdict = if r.byte_identical {
            "byte-identical".to_string()
        } else if let Some(e) = &r.error {
            format!("failed: {}", e.cause)
        } else {
            "WRONG BYTES".to_string()
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.algo, verdict, r.faults_injected, r.faults_detected, r.retries, r.dup_frames_dropped,
        ));
    }
    out
}
